// Node-level tests of the shared page format: layout, leaf/inner
// operations, tombstones, splits, and duplicate handling. Parameterized
// over page sizes to sweep the layout math.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "btree/page.h"
#include "btree/types.h"
#include "common/random.h"

namespace namtree::btree {
namespace {

class PageBuffer {
 public:
  explicit PageBuffer(uint32_t page_size) : data_(page_size) {}
  PageView view() {
    return PageView(data_.data(), static_cast<uint32_t>(data_.size()));
  }

 private:
  std::vector<uint8_t> data_;
};

TEST(PageLayoutTest, HeaderIs32Bytes) {
  EXPECT_EQ(sizeof(PageHeader), 32u);
  EXPECT_EQ(kVersionOffset, 0u);
}

TEST(PageLayoutTest, CapacitiesForPaperPageSize) {
  // P=1024: leaf (1024-32-64)/16 = 58, inner (1024-40)/16 = 61.
  EXPECT_EQ(PageView::LeafCapacity(1024), 58u);
  EXPECT_EQ(PageView::InnerKeyCapacity(1024), 61u);
  EXPECT_EQ(PageView::HeadCapacity(1024), 124u);
}

class PageSizeTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, PageSizeTest,
                         ::testing::Values(256u, 512u, 1024u, 2048u, 4096u,
                                           8192u));

TEST_P(PageSizeTest, LeafCapacityFitsTombstoneBitmap) {
  const uint32_t cap = PageView::LeafCapacity(GetParam());
  EXPECT_GT(cap, 0u);
  EXPECT_LE(cap, PageView::kTombstoneBytes * 8);
  // Entries must fit in the page.
  EXPECT_LE(PageView::kHeaderBytes + PageView::kTombstoneBytes +
                cap * sizeof(KV),
            GetParam());
}

TEST_P(PageSizeTest, InnerLayoutFits) {
  const uint32_t cap = PageView::InnerKeyCapacity(GetParam());
  EXPECT_GT(cap, 0u);
  EXPECT_LE(PageView::kHeaderBytes + 8u * cap + 8u * (cap + 1), GetParam());
}

TEST_P(PageSizeTest, LeafInsertKeepsSortedOrder) {
  PageBuffer buf(GetParam());
  PageView leaf = buf.view();
  leaf.InitLeaf(kInfinityKey, 0);
  Rng rng(7);
  std::vector<Key> inserted;
  while (leaf.count() < leaf.leaf_capacity()) {
    const Key k = rng.NextBelow(10000);
    ASSERT_TRUE(leaf.LeafInsert(k, k * 2));
    inserted.push_back(k);
  }
  EXPECT_FALSE(leaf.LeafInsert(1, 1)) << "full leaf must reject";
  for (uint32_t i = 1; i < leaf.count(); ++i) {
    EXPECT_LE(leaf.leaf_entries()[i - 1].key, leaf.leaf_entries()[i].key);
  }
  for (Key k : inserted) {
    const int32_t idx = leaf.LeafFindLive(k);
    ASSERT_GE(idx, 0);
    EXPECT_EQ(leaf.leaf_entries()[idx].key, k);
  }
}

TEST(PageTest, LeafLowerBoundSemantics) {
  PageBuffer buf(1024);
  PageView leaf = buf.view();
  leaf.InitLeaf(kInfinityKey, 0);
  for (Key k : {10, 20, 20, 30}) leaf.LeafInsert(k, k);
  EXPECT_EQ(leaf.LeafLowerBound(5), 0u);
  EXPECT_EQ(leaf.LeafLowerBound(10), 0u);
  EXPECT_EQ(leaf.LeafLowerBound(15), 1u);
  EXPECT_EQ(leaf.LeafLowerBound(20), 1u);
  EXPECT_EQ(leaf.LeafLowerBound(21), 3u);
  EXPECT_EQ(leaf.LeafLowerBound(30), 3u);
  EXPECT_EQ(leaf.LeafLowerBound(31), 4u);
}

TEST(PageTest, TombstonesHideEntriesAndCompactRemovesThem) {
  PageBuffer buf(1024);
  PageView leaf = buf.view();
  leaf.InitLeaf(kInfinityKey, 0);
  for (Key k = 0; k < 10; ++k) leaf.LeafInsert(k, k + 100);
  EXPECT_TRUE(leaf.LeafMarkDeleted(3));
  EXPECT_TRUE(leaf.LeafMarkDeleted(7));
  EXPECT_EQ(leaf.LeafFindLive(3), -1);
  EXPECT_EQ(leaf.LeafFindLive(7), -1);
  EXPECT_GE(leaf.LeafFindLive(4), 0);
  EXPECT_FALSE(leaf.LeafMarkDeleted(3)) << "double delete must miss";
  EXPECT_EQ(leaf.LeafCompact(), 2u);
  EXPECT_EQ(leaf.count(), 8u);
  EXPECT_EQ(leaf.LeafFindLive(3), -1);
  for (Key k : {0, 1, 2, 4, 5, 6, 8, 9}) {
    const int32_t idx = leaf.LeafFindLive(k);
    ASSERT_GE(idx, 0) << "key " << k;
    EXPECT_EQ(leaf.leaf_entries()[idx].value, k + 100);
  }
}

TEST(PageTest, TombstoneBitsFollowShiftedEntries) {
  PageBuffer buf(1024);
  PageView leaf = buf.view();
  leaf.InitLeaf(kInfinityKey, 0);
  for (Key k : {10, 30, 50}) leaf.LeafInsert(k, k);
  leaf.LeafMarkDeleted(30);
  // Inserting 20 shifts 30 and 50 up; the tombstone must follow 30.
  leaf.LeafInsert(20, 20);
  EXPECT_EQ(leaf.LeafFindLive(30), -1);
  EXPECT_GE(leaf.LeafFindLive(20), 0);
  EXPECT_GE(leaf.LeafFindLive(50), 0);
}

TEST(PageTest, DuplicateOnlyFirstLiveIsDeleted) {
  PageBuffer buf(1024);
  PageView leaf = buf.view();
  leaf.InitLeaf(kInfinityKey, 0);
  leaf.LeafInsert(5, 1);
  leaf.LeafInsert(5, 2);
  leaf.LeafInsert(5, 3);
  EXPECT_TRUE(leaf.LeafMarkDeleted(5));
  int32_t idx = leaf.LeafFindLive(5);
  ASSERT_GE(idx, 0);
  EXPECT_TRUE(leaf.LeafMarkDeleted(5));
  EXPECT_TRUE(leaf.LeafMarkDeleted(5));
  EXPECT_FALSE(leaf.LeafMarkDeleted(5));
}

TEST(PageTest, SplitLeafDistributesEntriesAndFixesFences) {
  PageBuffer left_buf(1024);
  PageBuffer right_buf(1024);
  PageView left = left_buf.view();
  left.InitLeaf(777, 0xABCD);
  const uint32_t cap = left.leaf_capacity();
  for (uint32_t i = 0; i < cap; ++i) left.LeafInsert(i * 2, i);

  const Key sep = left.SplitLeafInto(right_buf.view(), 0x1111);
  PageView right = right_buf.view();

  EXPECT_EQ(left.count() + right.count(), cap);
  EXPECT_EQ(left.high_key(), sep);
  EXPECT_EQ(left.right_sibling(), 0x1111u);
  EXPECT_EQ(right.high_key(), 777u);
  EXPECT_EQ(right.right_sibling(), 0xABCDu);
  EXPECT_EQ(right.leaf_entries()[0].key, sep);
  // All left keys < sep, all right keys >= sep.
  for (uint32_t i = 0; i < left.count(); ++i) {
    EXPECT_LT(left.leaf_entries()[i].key, sep);
  }
  for (uint32_t i = 0; i < right.count(); ++i) {
    EXPECT_GE(right.leaf_entries()[i].key, sep);
  }
}

TEST(PageTest, SplitLeafCarriesTombstones) {
  PageBuffer left_buf(1024);
  PageBuffer right_buf(1024);
  PageView left = left_buf.view();
  left.InitLeaf(kInfinityKey, 0);
  const uint32_t cap = left.leaf_capacity();
  for (uint32_t i = 0; i < cap; ++i) left.LeafInsert(i, i);
  left.LeafMarkDeleted(cap - 1);  // lands in the right half
  left.LeafMarkDeleted(0);        // stays in the left half
  left.SplitLeafInto(right_buf.view(), 0);
  PageView right = right_buf.view();
  EXPECT_EQ(left.LeafFindLive(0), -1);
  EXPECT_EQ(right.LeafFindLive(cap - 1), -1);
  EXPECT_GE(right.LeafFindLive(cap - 2), 0);
}

TEST(PageTest, InnerChildForUsesLowerBoundDescent) {
  PageBuffer buf(1024);
  PageView inner = buf.view();
  inner.InitInner(1, kInfinityKey, 0);
  // children: c0 | 10 | c1 | 20 | c2
  inner.inner_children()[0] = 100;
  inner.InnerInsert(10, 101);
  inner.InnerInsert(20, 102);
  EXPECT_EQ(inner.InnerChildFor(5), 100u);
  EXPECT_EQ(inner.InnerChildFor(9), 100u);
  // Lower-bound: a key equal to a separator descends LEFT of it.
  EXPECT_EQ(inner.InnerChildFor(10), 100u);
  EXPECT_EQ(inner.InnerChildFor(11), 101u);
  EXPECT_EQ(inner.InnerChildFor(20), 101u);
  EXPECT_EQ(inner.InnerChildFor(25), 102u);
}

TEST(PageTest, InnerInsertMaintainsSeparatorOrder) {
  PageBuffer buf(1024);
  PageView inner = buf.view();
  inner.InitInner(1, kInfinityKey, 0);
  inner.inner_children()[0] = 1;
  Rng rng(3);
  std::vector<Key> seps;
  while (inner.count() < inner.inner_capacity()) {
    const Key sep = rng.NextBelow(100000);
    ASSERT_TRUE(inner.InnerInsert(sep, sep + 1));
    seps.push_back(sep);
  }
  EXPECT_FALSE(inner.InnerInsert(1, 2));
  for (uint32_t i = 1; i < inner.count(); ++i) {
    EXPECT_LE(inner.inner_keys()[i - 1], inner.inner_keys()[i]);
  }
  // Each separator's right child must be the pointer inserted with it.
  std::sort(seps.begin(), seps.end());
  for (uint32_t i = 0; i < inner.count(); ++i) {
    EXPECT_EQ(inner.inner_keys()[i], seps[i]);
  }
}

TEST(PageTest, SplitInnerPromotesMiddleKey) {
  PageBuffer left_buf(1024);
  PageBuffer right_buf(1024);
  PageView left = left_buf.view();
  left.InitInner(2, 999999, 0xBEEF);
  left.inner_children()[0] = 1000;
  const uint32_t cap = left.inner_capacity();
  for (uint32_t i = 0; i < cap; ++i) left.InnerInsert((i + 1) * 10, i + 1);

  const Key promoted = left.SplitInnerInto(right_buf.view(), 0x2222);
  PageView right = right_buf.view();

  // The promoted key is in neither half.
  for (uint32_t i = 0; i < left.count(); ++i) {
    EXPECT_LT(left.inner_keys()[i], promoted);
  }
  for (uint32_t i = 0; i < right.count(); ++i) {
    EXPECT_GT(right.inner_keys()[i], promoted);
  }
  EXPECT_EQ(left.count() + right.count() + 1, cap);
  EXPECT_EQ(left.high_key(), promoted);
  EXPECT_EQ(left.right_sibling(), 0x2222u);
  EXPECT_EQ(right.high_key(), 999999u);
  EXPECT_EQ(right.right_sibling(), 0xBEEFu);
  EXPECT_EQ(right.level(), 2);
  // Child counts: left has count+1 children, right has count+1 children.
  EXPECT_EQ(right.inner_children()[0], cap / 2 + 1u);
}

TEST(PageTest, HeadNodeLayout) {
  PageBuffer buf(1024);
  PageView head = buf.view();
  head.InitHead(0x42);
  EXPECT_TRUE(head.is_head());
  EXPECT_FALSE(head.is_leaf());
  EXPECT_EQ(head.right_sibling(), 0x42u);
  for (uint32_t i = 0; i < head.head_capacity(); ++i) {
    head.head_ptrs()[i] = i + 1;
  }
  head.header().count = static_cast<uint16_t>(head.head_capacity());
  EXPECT_EQ(head.head_ptrs()[head.head_capacity() - 1],
            head.head_capacity());
}

// ---- Fence-predicate boundary regressions ---------------------------------
// The inclusive/exclusive fence contract lives in PageView::NeedsChase
// (page.h); every descent in the repo routes through it. These tests pin
// the boundary cases that were historically re-derived inconsistently at
// each hand-rolled chase site.

TEST(FencePredicateTest, InnerCoversItsFenceKey) {
  // Inner nodes cover [low, high_key] INCLUSIVE: a key equal to the fence
  // is a separator-equal key, and lower-bound descent sends it LEFT so
  // straddling duplicates stay reachable. Only key > fence chases.
  PageBuffer buf(1024);
  PageView inner = buf.view();
  inner.InitInner(1, /*high_key=*/100, /*right_sibling=*/0x1234);
  EXPECT_TRUE(inner.Covers(99));
  EXPECT_TRUE(inner.Covers(100)) << "fence key itself descends here";
  EXPECT_FALSE(inner.NeedsChase(100));
  EXPECT_TRUE(inner.NeedsChase(101));
  EXPECT_FALSE(inner.Covers(101));
}

TEST(FencePredicateTest, LeafChasesAtItsFenceKey) {
  // Leaves cover [low, high_key) EXCLUSIVE: an entry equal to the fence
  // lives in the right sibling (SplitLeafInto moves sep..* right), so
  // key >= fence chases. Callers inspect leaf content BEFORE consulting
  // NeedsChase, which keeps duplicate runs straddling the fence visible.
  PageBuffer buf(1024);
  PageView leaf = buf.view();
  leaf.InitLeaf(/*high_key=*/100, /*right_sibling=*/0x1234);
  EXPECT_TRUE(leaf.Covers(99));
  EXPECT_TRUE(leaf.NeedsChase(100)) << "fence key lives in the sibling";
  EXPECT_FALSE(leaf.Covers(100));
  EXPECT_TRUE(leaf.NeedsChase(101));
}

TEST(FencePredicateTest, SplitFencesAgreeWithPredicate) {
  // After a real split, the separator must chase on the left half and be
  // covered by the right half — for both node kinds.
  PageBuffer left_buf(1024);
  PageBuffer right_buf(1024);
  PageView left = left_buf.view();
  left.InitLeaf(kInfinityKey, 0);
  for (uint32_t i = 0; i < left.leaf_capacity(); ++i) {
    left.LeafInsert(i * 2, i);
  }
  const Key sep = left.SplitLeafInto(right_buf.view(), 0x2222);
  PageView right = right_buf.view();
  EXPECT_TRUE(left.NeedsChase(sep));
  EXPECT_TRUE(left.Covers(sep - 1));
  EXPECT_TRUE(right.Covers(sep));

  PageBuffer ileft_buf(1024);
  PageBuffer iright_buf(1024);
  PageView ileft = ileft_buf.view();
  ileft.InitInner(1, kInfinityKey, 0);
  ileft.inner_children()[0] = 1;
  for (uint32_t i = 0; i < ileft.inner_capacity(); ++i) {
    ileft.InnerInsert((i + 1) * 10, i + 2);
  }
  const Key promoted = ileft.SplitInnerInto(iright_buf.view(), 0x3333);
  PageView iright = iright_buf.view();
  // Inner: the promoted key itself still descends on the LEFT half
  // (inclusive fence); only keys above it chase.
  EXPECT_TRUE(ileft.Covers(promoted));
  EXPECT_TRUE(ileft.NeedsChase(promoted + 1));
  EXPECT_TRUE(iright.Covers(promoted + 1));
}

TEST(FencePredicateTest, HeadNodeChasesThroughForEveryKey) {
  // Head nodes carry high_key == 0 and exist only to route scans to the
  // real chain; every key chases through to the right sibling.
  PageBuffer buf(1024);
  PageView head = buf.view();
  head.InitHead(/*right_sibling=*/0x42);
  EXPECT_TRUE(head.NeedsChase(0));
  EXPECT_TRUE(head.NeedsChase(1));
  EXPECT_TRUE(head.NeedsChase(kInfinityKey));
  EXPECT_FALSE(head.Covers(7));
}

TEST(FencePredicateTest, DrainedLeafChasesThroughForEveryKey) {
  // GC rebalancing drains a leaf by setting high_key = 0 while keeping
  // the sibling link: the empty range [low, 0) covers nothing, so every
  // descent passes through to the survivor on the right.
  PageBuffer buf(1024);
  PageView leaf = buf.view();
  leaf.InitLeaf(/*high_key=*/0, /*right_sibling=*/0x55);
  EXPECT_TRUE(leaf.NeedsChase(0));
  EXPECT_TRUE(leaf.NeedsChase(kInfinityKey));
}

TEST(FencePredicateTest, RightmostPageNeverChases) {
  // right_sibling == 0 terminates the chain: the rightmost page covers
  // everything upward regardless of its fence, for both node kinds —
  // even the kInfinityKey fence value itself.
  PageBuffer leaf_buf(1024);
  PageView leaf = leaf_buf.view();
  leaf.InitLeaf(kInfinityKey, /*right_sibling=*/0);
  EXPECT_FALSE(leaf.NeedsChase(kInfinityKey));
  EXPECT_TRUE(leaf.Covers(kInfinityKey));

  PageBuffer inner_buf(1024);
  PageView inner = inner_buf.view();
  inner.InitInner(1, /*high_key=*/100, /*right_sibling=*/0);
  // Degenerate but defensive: no sibling means no chase even above the
  // fence (a descent here inspects content instead of walking off chain).
  EXPECT_FALSE(inner.NeedsChase(101));
  EXPECT_TRUE(inner.Covers(kInfinityKey));
}

// Property sweep: random insert/delete sequences against a reference
// multimap, at node granularity.
class LeafPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, LeafPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST_P(LeafPropertyTest, MatchesReferenceModel) {
  PageBuffer buf(512);
  PageView leaf = buf.view();
  leaf.InitLeaf(kInfinityKey, 0);
  std::multimap<Key, Value> reference;
  Rng rng(GetParam());

  for (int step = 0; step < 2000; ++step) {
    const Key k = rng.NextBelow(40);
    const double action = rng.NextDouble();
    if (action < 0.5) {
      const Value v = rng.Next();
      if (leaf.LeafInsert(k, v)) {
        reference.emplace(k, v);
      } else {
        EXPECT_EQ(leaf.count(), leaf.leaf_capacity());
        leaf.LeafCompact();
        // Rebuild the reference without the tombstoned entries: compaction
        // preserves exactly the live ones, which the model already tracks.
      }
    } else if (action < 0.75) {
      const bool deleted = leaf.LeafMarkDeleted(k);
      auto it = reference.find(k);
      EXPECT_EQ(deleted, it != reference.end());
      if (it != reference.end()) reference.erase(it);
    } else {
      const bool found = leaf.LeafFindLive(k) >= 0;
      EXPECT_EQ(found, reference.count(k) > 0) << "key " << k;
    }
  }
}

}  // namespace
}  // namespace namtree::btree
