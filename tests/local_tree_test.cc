// Tests for the standalone thread-safe local B-link tree (the memory-server
// substrate of the coarse-grained design): single-threaded correctness
// against a reference model, duplicates, deletes + GC, scans, bulk load, and
// real multi-threaded stress with std::thread.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "btree/local_tree.h"
#include "common/random.h"

namespace namtree::btree {
namespace {

TEST(LocalTreeTest, EmptyTreeMissesEverything) {
  LocalBLinkTree tree(512);
  EXPECT_TRUE(tree.Lookup(1).status().IsNotFound());
  EXPECT_TRUE(tree.Delete(1).IsNotFound());
  std::vector<KV> out;
  EXPECT_EQ(tree.Scan(0, kInfinityKey, &out), 0u);
}

TEST(LocalTreeTest, InsertLookupRoundTrip) {
  LocalBLinkTree tree(512);
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree.Insert(k * 3, k).ok());
  }
  for (Key k = 0; k < 1000; ++k) {
    auto r = tree.Lookup(k * 3);
    ASSERT_TRUE(r.ok()) << "key " << k * 3;
    EXPECT_EQ(r.value(), k);
    EXPECT_FALSE(tree.Lookup(k * 3 + 1).ok());
  }
}

TEST(LocalTreeTest, SplitsGrowTheTree) {
  LocalBLinkTree tree(256);  // tiny pages force frequent splits
  const uint64_t n = 20000;
  for (Key k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.Insert(k, k + 1).ok());
  }
  auto stats = tree.GetStats();
  EXPECT_EQ(stats.live_entries, n);
  EXPECT_GT(stats.height, 2u);
  for (Key k = 0; k < n; k += 97) {
    auto r = tree.Lookup(k);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), k + 1);
  }
}

TEST(LocalTreeTest, DescendingInsertOrder) {
  LocalBLinkTree tree(256);
  for (Key k = 5000; k > 0; --k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  std::vector<KV> out;
  EXPECT_EQ(tree.Scan(1, 5001, &out), 5000u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1].key, out[i].key);
  }
}

TEST(LocalTreeTest, DuplicateKeysAllFindable) {
  LocalBLinkTree tree(256);
  // More duplicates of one key than a leaf can hold.
  const uint32_t dupes = 500;
  for (uint32_t i = 0; i < dupes; ++i) {
    ASSERT_TRUE(tree.Insert(42, 1000 + i).ok());
    ASSERT_TRUE(tree.Insert(41, i).ok());
    ASSERT_TRUE(tree.Insert(43, i).ok());
  }
  EXPECT_TRUE(tree.Lookup(42).ok());
  std::vector<KV> out;
  EXPECT_EQ(tree.Scan(42, 43, &out), dupes);
  std::set<Value> values;
  for (const KV& kv : out) {
    EXPECT_EQ(kv.key, 42u);
    values.insert(kv.value);
  }
  EXPECT_EQ(values.size(), dupes) << "every duplicate must be distinct";
}

TEST(LocalTreeTest, ScanRespectsBounds) {
  LocalBLinkTree tree(512);
  for (Key k = 0; k < 300; ++k) (void)tree.Insert(k * 10, k);
  std::vector<KV> out;
  EXPECT_EQ(tree.Scan(100, 200, &out), 10u);
  EXPECT_EQ(out.front().key, 100u);
  EXPECT_EQ(out.back().key, 190u);
  out.clear();
  EXPECT_EQ(tree.Scan(105, 106, &out), 0u);
  EXPECT_EQ(tree.Scan(0, 1, nullptr), 1u);
  EXPECT_EQ(tree.Scan(50, 50, nullptr), 0u) << "empty interval";
}

TEST(LocalTreeTest, UpdateInPlace) {
  LocalBLinkTree tree(512);
  for (Key k = 0; k < 1000; ++k) (void)tree.Insert(k * 2, k);
  EXPECT_TRUE(tree.Update(100, 999).ok());
  EXPECT_EQ(tree.Lookup(100).value_or(0), 999u);
  EXPECT_TRUE(tree.Update(101, 1).IsNotFound());
  EXPECT_FALSE(tree.Lookup(101).ok()) << "failed update must not insert";
  // Updating a tombstoned key misses.
  (void)tree.Delete(100);
  EXPECT_TRUE(tree.Update(100, 5).IsNotFound());
}

TEST(LocalTreeTest, LookupAllAcrossPageBoundaries) {
  LocalBLinkTree tree(256);  // leaf capacity 10
  for (Key k = 0; k < 500; ++k) (void)tree.Insert(k * 10, k);
  for (uint64_t i = 0; i < 35; ++i) (void)tree.Insert(2500, 7000 + i);
  std::vector<Value> values;
  EXPECT_EQ(tree.LookupAll(2500, &values), 36u);  // base entry + 35 dupes
  std::set<Value> unique(values.begin(), values.end());
  EXPECT_EQ(unique.size(), 36u);
  EXPECT_EQ(tree.LookupAll(2501, nullptr), 0u);
  // Deletes reduce the collected set one entry at a time.
  (void)tree.Delete(2500);
  (void)tree.Delete(2500);
  EXPECT_EQ(tree.LookupAll(2500, nullptr), 34u);
}

TEST(LocalTreeTest, DeleteThenGarbageCollect) {
  LocalBLinkTree tree(512);
  const uint64_t n = 5000;
  for (Key k = 0; k < n; ++k) (void)tree.Insert(k, k);
  for (Key k = 0; k < n; k += 2) {
    ASSERT_TRUE(tree.Delete(k).ok());
  }
  EXPECT_FALSE(tree.Lookup(0).ok());
  EXPECT_TRUE(tree.Lookup(1).ok());
  auto before = tree.GetStats();
  EXPECT_EQ(before.tombstones, n / 2);
  EXPECT_EQ(tree.GarbageCollect(), n / 2);
  auto after = tree.GetStats();
  EXPECT_EQ(after.tombstones, 0u);
  EXPECT_EQ(after.live_entries, n / 2);
  EXPECT_FALSE(tree.Lookup(0).ok());
  EXPECT_TRUE(tree.Lookup(1).ok());
  // Deleted keys can be re-inserted.
  EXPECT_TRUE(tree.Insert(0, 777).ok());
  EXPECT_EQ(tree.Lookup(0).value_or(0), 777u);
}

TEST(LocalTreeTest, BulkLoadMatchesIncrementalContent) {
  const uint64_t n = 30000;
  std::vector<KV> data;
  for (Key k = 0; k < n; ++k) data.push_back({k * 2, k});
  LocalBLinkTree tree(1024);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  auto stats = tree.GetStats();
  EXPECT_EQ(stats.live_entries, n);
  for (Key k = 0; k < n; k += 101) {
    auto r = tree.Lookup(k * 2);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), k);
  }
  std::vector<KV> out;
  EXPECT_EQ(tree.Scan(0, n * 2, &out), n);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                             [](const KV& a, const KV& b) {
                               return a.key < b.key;
                             }));
  // Bulk-loaded trees accept further inserts.
  EXPECT_TRUE(tree.Insert(1, 999).ok());
  EXPECT_EQ(tree.Lookup(1).value_or(0), 999u);
}

TEST(LocalTreeCursorTest, IteratesInOrderFromSeek) {
  LocalBLinkTree tree(256);
  for (Key k = 0; k < 3000; ++k) (void)tree.Insert(k * 3, k);
  auto cursor = tree.Seek(1500);
  Key previous = 0;
  uint64_t seen = 0;
  for (; cursor.Valid(); cursor.Next()) {
    EXPECT_GE(cursor.key(), 1500u);
    if (seen > 0) {
      EXPECT_GT(cursor.key(), previous);
    }
    EXPECT_EQ(cursor.value(), cursor.key() / 3);
    previous = cursor.key();
    seen++;
  }
  EXPECT_EQ(seen, 3000u - 500u);  // keys 1500..8997 step 3
  cursor.Next();                  // Next past the end is a no-op
  EXPECT_FALSE(cursor.Valid());
}

TEST(LocalTreeCursorTest, SkipsTombstonesAndEmptyRegions) {
  LocalBLinkTree tree(256);
  for (Key k = 0; k < 1000; ++k) (void)tree.Insert(k, k);
  // Tombstone a broad band in the middle (spanning many pages).
  for (Key k = 200; k < 800; ++k) (void)tree.Delete(k);
  auto cursor = tree.Seek(150);
  std::vector<Key> keys;
  for (; cursor.Valid(); cursor.Next()) keys.push_back(cursor.key());
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front(), 150u);
  // The band is absent, the tail resumes at 800.
  auto it = std::lower_bound(keys.begin(), keys.end(), 200u);
  ASSERT_NE(it, keys.end());
  EXPECT_EQ(*it, 800u);
  EXPECT_EQ(keys.size(), 50u + 200u);
}

TEST(LocalTreeCursorTest, SeekPastEndIsInvalid) {
  LocalBLinkTree tree(256);
  for (Key k = 0; k < 100; ++k) (void)tree.Insert(k, k);
  EXPECT_FALSE(tree.Seek(1000).Valid());
  LocalBLinkTree empty(256);
  EXPECT_FALSE(empty.Seek(0).Valid());
}

class LocalTreeRandomTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, LocalTreeRandomTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

TEST_P(LocalTreeRandomTest, MatchesReferenceUnderRandomOps) {
  LocalBLinkTree tree(256);
  std::multimap<Key, Value> reference;
  Rng rng(GetParam());
  for (int step = 0; step < 20000; ++step) {
    const Key k = rng.NextBelow(2000);
    const double action = rng.NextDouble();
    if (action < 0.55) {
      const Value v = rng.Next() >> 1;
      ASSERT_TRUE(tree.Insert(k, v).ok());
      reference.emplace(k, v);
    } else if (action < 0.7) {
      const bool tree_deleted = tree.Delete(k).ok();
      auto it = reference.find(k);
      ASSERT_EQ(tree_deleted, it != reference.end()) << "key " << k;
      if (it != reference.end()) reference.erase(it);
    } else if (action < 0.9) {
      ASSERT_EQ(tree.Lookup(k).ok(), reference.count(k) > 0) << "key " << k;
    } else {
      const Key hi = k + 1 + rng.NextBelow(100);
      const uint64_t expected = std::distance(reference.lower_bound(k),
                                              reference.lower_bound(hi));
      ASSERT_EQ(tree.Scan(k, hi, nullptr), expected)
          << "range [" << k << ", " << hi << ")";
    }
    if (step % 5000 == 4999) tree.GarbageCollect();
  }
}

// ---- Real multi-threaded stress -------------------------------------------

TEST(LocalTreeConcurrencyTest, ParallelDisjointInserts) {
  LocalBLinkTree tree(256);
  const int threads = 8;
  const uint64_t per_thread = 4000;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&tree, t, per_thread] {
      for (uint64_t i = 0; i < per_thread; ++i) {
        ASSERT_TRUE(tree.Insert(i * threads + t, i).ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  auto stats = tree.GetStats();
  EXPECT_EQ(stats.live_entries, per_thread * threads);
  for (uint64_t i = 0; i < per_thread * threads; i += 331) {
    EXPECT_TRUE(tree.Lookup(i).ok()) << "key " << i;
  }
}

TEST(LocalTreeConcurrencyTest, ReadersDuringWrites) {
  LocalBLinkTree tree(256);
  for (Key k = 0; k < 10000; k += 2) (void)tree.Insert(k, k);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_errors{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const Key k = rng.NextBelow(5000) * 2;
        if (!tree.Lookup(k).ok()) {
          reader_errors.fetch_add(1);
        }
        std::vector<KV> out;
        tree.Scan(k, k + 50, &out);
        for (size_t i = 1; i < out.size(); ++i) {
          if (out[i - 1].key > out[i].key) reader_errors.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    for (Key k = 1; k < 10000; k += 2) (void)tree.Insert(k, k);
    stop.store(true);
  });
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(reader_errors.load(), 0u)
      << "pre-existing keys must stay visible and scans sorted";
  auto stats = tree.GetStats();
  EXPECT_EQ(stats.live_entries, 10000u);
}

TEST(LocalTreeConcurrencyTest, ConcurrentUpdatesNeverTear) {
  LocalBLinkTree tree(256);
  const uint64_t n = 2000;
  for (Key k = 0; k < n; ++k) (void)tree.Insert(k, 0);
  // Writers update disjoint value namespaces; readers must always observe
  // a value some writer actually wrote (no torn/garbage values).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&tree, t, n] {
      Rng rng(40 + t);
      for (int i = 0; i < 5000; ++i) {
        const Key k = rng.NextBelow(n);
        (void)tree.Update(k, (static_cast<Value>(t) << 32) | (i + 1));
      }
    });
  }
  std::thread reader([&] {
    Rng rng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      const Key k = rng.NextBelow(n);
      const auto r = tree.Lookup(k);
      if (!r.ok()) {
        bad.fetch_add(1);
        continue;
      }
      const Value v = r.value();
      const uint64_t writer = v >> 32;
      const uint64_t seq = v & 0xFFFFFFFF;
      if (v != 0 && (writer >= 4 || seq == 0 || seq > 5000)) {
        bad.fetch_add(1);
      }
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(LocalTreeConcurrencyTest, MixedWorkloadKeepsInvariants) {
  LocalBLinkTree tree(256);
  for (Key k = 0; k < 5000; ++k) (void)tree.Insert(k * 4, k);
  std::vector<std::thread> workers;
  std::atomic<uint64_t> inserted{0};
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&tree, &inserted, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 3000; ++i) {
        const double a = rng.NextDouble();
        const Key k = rng.NextBelow(20000);
        if (a < 0.4) {
          if (tree.Insert(k, k).ok()) inserted.fetch_add(1);
        } else if (a < 0.6) {
          (void)tree.Delete(k);
        } else if (a < 0.8) {
          tree.Lookup(k);
        } else {
          tree.Scan(k, k + 64, nullptr);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Full-tree invariant check: scan everything, keys sorted, counts sane.
  std::vector<KV> out;
  const uint64_t total = tree.Scan(0, kInfinityKey, &out);
  EXPECT_EQ(total, out.size());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                             [](const KV& a, const KV& b) {
                               return a.key < b.key;
                             }));
  tree.GarbageCollect();
  EXPECT_EQ(tree.GetStats().tombstones, 0u);
}

}  // namespace
}  // namespace namtree::btree
