// Unit tests for the discrete-event simulator core: event ordering, virtual
// time, coroutine tasks, delays, events, worker pools and links.

#include <gtest/gtest.h>

#include <vector>

#include "sim/link.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace namtree::sim {
namespace {

Task<> RecordAt(Simulator& s, SimTime delay, int id, std::vector<int>* order) {
  co_await Delay(s, delay);
  order->push_back(id);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  Spawn(s, RecordAt(s, 300, 3, &order));
  Spawn(s, RecordAt(s, 100, 1, &order));
  Spawn(s, RecordAt(s, 200, 2, &order));
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300);
}

TEST(SimulatorTest, EqualTimestampsFireInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) Spawn(s, RecordAt(s, 50, i, &order));
  s.Run();
  std::vector<int> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(SimulatorTest, ZeroDelayIsAYieldPoint) {
  Simulator s;
  std::vector<int> order;
  Spawn(s, RecordAt(s, 0, 1, &order));
  Spawn(s, RecordAt(s, 0, 2, &order));
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 0);
}

Task<int> Answer(Simulator& s) {
  co_await Delay(s, 10);
  co_return 42;
}

Task<> AwaitChild(Simulator& s, int* out) {
  *out = co_await Answer(s);
}

TEST(SimulatorTest, TaskReturnsValueThroughAwait) {
  Simulator s;
  int out = 0;
  Spawn(s, AwaitChild(s, &out));
  s.Run();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(s.now(), 10);
}

Task<> NestedDelays(Simulator& s, std::vector<SimTime>* stamps) {
  stamps->push_back(s.now());
  co_await Delay(s, 5);
  stamps->push_back(s.now());
  co_await Delay(s, 7);
  stamps->push_back(s.now());
}

TEST(SimulatorTest, DelaysAccumulate) {
  Simulator s;
  std::vector<SimTime> stamps;
  Spawn(s, NestedDelays(s, &stamps));
  s.Run();
  EXPECT_EQ(stamps, (std::vector<SimTime>{0, 5, 12}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  std::vector<int> order;
  Spawn(s, RecordAt(s, 100, 1, &order));
  Spawn(s, RecordAt(s, 200, 2, &order));
  const bool remaining = s.RunUntil(150);
  EXPECT_TRUE(remaining);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.now(), 150);
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

Task<> Waiter(SimEvent& ev, Simulator& s, std::vector<SimTime>* stamps) {
  co_await ev;
  stamps->push_back(s.now());
}

Task<> Setter(Simulator& s, SimEvent& ev, SimTime at) {
  co_await Delay(s, at);
  ev.Set();
}

TEST(SimulatorTest, SimEventWakesAllWaiters) {
  Simulator s;
  SimEvent ev(s);
  std::vector<SimTime> stamps;
  Spawn(s, Waiter(ev, s, &stamps));
  Spawn(s, Waiter(ev, s, &stamps));
  Spawn(s, Setter(s, ev, 77));
  s.Run();
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_EQ(stamps[0], 77);
  EXPECT_EQ(stamps[1], 77);
}

TEST(SimulatorTest, SimEventAwaitAfterSetCompletesImmediately) {
  Simulator s;
  SimEvent ev(s);
  ev.Set();
  std::vector<SimTime> stamps;
  Spawn(s, Waiter(ev, s, &stamps));
  s.Run();
  ASSERT_EQ(stamps.size(), 1u);
  EXPECT_EQ(stamps[0], 0);
}

Task<> UseWorker(Simulator& s, WorkerPool& pool, SimTime hold,
                 std::vector<SimTime>* finish) {
  co_await pool.Acquire();
  co_await Delay(s, hold);
  pool.Release();
  finish->push_back(s.now());
}

TEST(WorkerPoolTest, CapacityLimitsConcurrency) {
  Simulator s;
  WorkerPool pool(s, 2);
  std::vector<SimTime> finish;
  for (int i = 0; i < 6; ++i) Spawn(s, UseWorker(s, pool, 100, &finish));
  s.Run();
  // 6 jobs, 2 workers, 100ns each -> waves at 100/200/300.
  EXPECT_EQ(finish, (std::vector<SimTime>{100, 100, 200, 200, 300, 300}));
  EXPECT_EQ(pool.total_grants(), 6u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(WorkerPoolTest, FifoGrantOrder) {
  Simulator s;
  WorkerPool pool(s, 1);
  std::vector<SimTime> finish;
  for (int i = 0; i < 4; ++i) Spawn(s, UseWorker(s, pool, 10, &finish));
  s.Run();
  EXPECT_EQ(finish, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(LinkTest, TransfersSerialize) {
  Link link(1e9);  // 1 byte per ns
  EXPECT_EQ(link.ReserveTransfer(0, 1000), 1000);
  EXPECT_EQ(link.ReserveTransfer(0, 1000), 2000);    // queued behind first
  EXPECT_EQ(link.ReserveTransfer(5000, 500), 5500);  // idle gap
  EXPECT_EQ(link.total_bytes(), 2500u);
  EXPECT_EQ(link.total_transfers(), 3u);
  EXPECT_EQ(link.busy_time(), 2500);
}

TEST(LinkTest, ReserveArrivalDoesNotDoubleChargeIdlePath) {
  Link link(1e9);
  // First byte arrives at t=100, 50 bytes -> done at 150.
  EXPECT_EQ(link.ReserveArrival(100, 50), 150);
  // Busy channel: next transfer queues at 150.
  EXPECT_EQ(link.ReserveArrival(100, 50), 200);
}

TEST(LinkTest, OccupancyReservations) {
  Link link(1e9);
  EXPECT_EQ(link.ReserveOccupancy(10, 5), 15);
  EXPECT_EQ(link.ReserveOccupancy(0, 5), 20);  // serialized behind previous
  EXPECT_EQ(link.total_bytes(), 0u);
}

TEST(LinkTest, TransferDurationRoundsUp) {
  Link link(3e9);  // 3 bytes per ns
  EXPECT_EQ(link.TransferDuration(10), 4);  // ceil(10/3)
}

TEST(TaskTest, MoveSemantics) {
  Simulator s;
  std::vector<int> order;
  Task<> t = RecordAt(s, 10, 1, &order);
  EXPECT_TRUE(t.valid());
  Task<> moved = std::move(t);
  EXPECT_FALSE(t.valid());
  EXPECT_TRUE(moved.valid());
  Spawn(s, std::move(moved));
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1}));
}

TEST(TaskTest, UnstartedTaskIsDestroyedCleanly) {
  Simulator s;
  std::vector<int> order;
  {
    Task<> t = RecordAt(s, 10, 1, &order);
    // Dropped without Spawn/await: the lazily-started frame must free.
  }
  s.Run();
  EXPECT_TRUE(order.empty());
}

TEST(SimulatorTest, DelayUntilPastClampsToNow) {
  Simulator s;
  struct Runner {
    static Task<> Go(Simulator& s, std::vector<SimTime>* stamps) {
      co_await Delay(s, 100);
      co_await DelayUntil(s, 50);  // already past: resumes "immediately"
      stamps->push_back(s.now());
    }
  };
  std::vector<SimTime> stamps;
  Spawn(s, Runner::Go(s, &stamps));
  s.Run();
  ASSERT_EQ(stamps.size(), 1u);
  EXPECT_EQ(stamps[0], 100);
}

TEST(SimulatorTest, RunUntilExactBoundaryIncludesEvent) {
  Simulator s;
  std::vector<int> order;
  Spawn(s, RecordAt(s, 100, 1, &order));
  EXPECT_FALSE(s.RunUntil(100));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.pending_events(), 0u);
}

Task<int> ChainedValue(Simulator& s, int depth) {
  if (depth == 0) co_return 1;
  co_await Delay(s, 1);
  const int below = co_await ChainedValue(s, depth - 1);
  co_return below * 2;
}

Task<> CollectChain(Simulator& s, int* out) {
  *out = co_await ChainedValue(s, 20);
}

TEST(TaskTest, DeepAwaitChains) {
  Simulator s;
  int out = 0;
  Spawn(s, CollectChain(s, &out));
  s.Run();
  EXPECT_EQ(out, 1 << 20);
  EXPECT_EQ(s.now(), 20);
}

// Determinism: two identical runs produce identical event traces.
TEST(SimulatorTest, DeterministicReplay) {
  auto run = [] {
    Simulator s;
    WorkerPool pool(s, 3);
    std::vector<SimTime> finish;
    for (int i = 0; i < 20; ++i) {
      Spawn(s, UseWorker(s, pool, 13 + (i % 7), &finish));
    }
    s.Run();
    return finish;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace namtree::sim
