// Direct tests of the fine-grained leaf level: chain building with head
// nodes, one-sided search/insert/delete at chain granularity, prefetching
// scans, compaction, and chain accounting.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "index/leaf_level.h"
#include "nam/cluster.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using btree::PageView;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

constexpr uint32_t kPage = 256;

rdma::FabricConfig Config() {
  rdma::FabricConfig config;
  config.num_memory_servers = 4;
  return config;
}

IndexConfig MakeIndexConfig(uint32_t interval) {
  IndexConfig config;
  config.page_size = kPage;
  config.head_node_interval = interval;
  return config;
}

std::vector<KV> MakeData(uint64_t n) {
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * 2, i});
  return data;
}

TEST(LeafLevelTest, BuildChainsLeavesAcrossServers) {
  Cluster cluster(Config(), 16 << 20);
  LeafLevel::BuildResult result;
  ASSERT_TRUE(LeafLevel::Build(cluster.fabric(), MakeData(1000),
                               MakeIndexConfig(0), &result)
                  .ok());
  ASSERT_FALSE(result.leaf_refs.empty());
  // Round-robin placement over 4 servers.
  EXPECT_EQ(rdma::RemotePtr(result.leaf_refs[0].raw_ptr).server_id(), 0u);
  EXPECT_EQ(rdma::RemotePtr(result.leaf_refs[1].raw_ptr).server_id(), 1u);
  EXPECT_EQ(rdma::RemotePtr(result.leaf_refs[2].raw_ptr).server_id(), 2u);
  // Low keys ascend strictly.
  for (size_t i = 1; i < result.leaf_refs.size(); ++i) {
    EXPECT_LT(result.leaf_refs[i - 1].low, result.leaf_refs[i].low);
  }
}

TEST(LeafLevelTest, HeadNodesAppearEveryInterval) {
  Cluster cluster(Config(), 16 << 20);
  LeafLevel::BuildResult result;
  ASSERT_TRUE(LeafLevel::Build(cluster.fabric(), MakeData(1000),
                               MakeIndexConfig(4), &result)
                  .ok());
  ClientContext ctx(0, cluster.fabric(), kPage, 1);

  struct Count {
    static Task<> Go(RemoteOps ops, rdma::RemotePtr first, uint64_t* pages,
                     uint64_t* live) {
      *pages = co_await LeafLevel::CountChain(ops, first, live, nullptr);
    }
  };
  uint64_t pages = 0;
  uint64_t live = 0;
  Spawn(cluster.simulator(),
        Count::Go(RemoteOps(ctx), result.first, &pages, &live));
  cluster.simulator().Run();

  const uint64_t leaves = result.leaf_refs.size();
  const uint64_t heads = pages - leaves;
  EXPECT_EQ(live, 1000u);
  // One head after every 4th leaf (except past the end).
  EXPECT_NEAR(static_cast<double>(heads),
              static_cast<double>(leaves) / 4.0, 2.0);
}

Task<> SearchKeys(RemoteOps ops, rdma::RemotePtr start,
                  std::vector<Key> keys, std::vector<LookupResult>* out) {
  for (Key k : keys) {
    out->push_back(co_await LeafLevel::SearchChain(ops, start, k));
  }
}

TEST(LeafLevelTest, SearchChainChasesFromAnyStartingLeaf) {
  Cluster cluster(Config(), 16 << 20);
  LeafLevel::BuildResult result;
  ASSERT_TRUE(LeafLevel::Build(cluster.fabric(), MakeData(500),
                               MakeIndexConfig(4), &result)
                  .ok());
  ClientContext ctx(0, cluster.fabric(), kPage, 1);
  // Start at the FIRST leaf and search keys that live far to the right:
  // the B-link chase (through head nodes) must find them.
  std::vector<LookupResult> results;
  Spawn(cluster.simulator(),
        SearchKeys(RemoteOps(ctx), result.first, {0, 998, 400, 999},
                   &results));
  cluster.simulator().Run();
  EXPECT_TRUE(results[0].found);
  EXPECT_TRUE(results[1].found);
  EXPECT_EQ(results[1].value, 499u);
  EXPECT_TRUE(results[2].found);
  EXPECT_FALSE(results[3].found);  // odd key
}

TEST(LeafLevelTest, InsertSplitReportsSeparator) {
  Cluster cluster(Config(), 16 << 20);
  LeafLevel::BuildResult built;
  // One nearly-full leaf (fill 90% of capacity 10 -> 9 entries).
  ASSERT_TRUE(LeafLevel::Build(cluster.fabric(), MakeData(9),
                               MakeIndexConfig(0), &built)
                  .ok());
  ClientContext ctx(0, cluster.fabric(), kPage, 1);

  struct Driver {
    static Task<> Go(RemoteOps ops, rdma::RemotePtr start, int n,
                     uint64_t* splits) {
      for (int i = 0; i < n; ++i) {
        LeafLevel::SplitInfo split;
        const Status s = co_await LeafLevel::InsertAt(
            ops, start, static_cast<Key>(i * 2 + 1), 1000 + i, &split);
        EXPECT_TRUE(s.ok());
        if (split.split) {
          EXPECT_FALSE(split.right.is_null());
          (*splits)++;
        }
      }
    }
  };
  uint64_t splits = 0;
  Spawn(cluster.simulator(),
        Driver::Go(RemoteOps(ctx), built.first, 30, &splits));
  cluster.simulator().Run();
  EXPECT_GT(splits, 0u);

  // All 9 + 30 entries reachable via the chain.
  uint64_t live = 0;
  struct Count {
    static Task<> Go(RemoteOps ops, rdma::RemotePtr first, uint64_t* live) {
      (void)co_await LeafLevel::CountChain(ops, first, live, nullptr);
    }
  };
  Spawn(cluster.simulator(), Count::Go(RemoteOps(ctx), built.first, &live));
  cluster.simulator().Run();
  EXPECT_EQ(live, 39u);
}

TEST(LeafLevelTest, ScanUsesBatchedPrefetch) {
  Cluster cluster(Config(), 16 << 20);
  LeafLevel::BuildResult built;
  ASSERT_TRUE(LeafLevel::Build(cluster.fabric(), MakeData(2000),
                               MakeIndexConfig(8), &built)
                  .ok());
  ClientContext ctx(0, cluster.fabric(), kPage, 1);

  struct Driver {
    static Task<> Go(RemoteOps ops, rdma::RemotePtr start,
                     std::vector<KV>* out, uint64_t* n) {
      *n = co_await LeafLevel::ScanChain(ops, start, 100, 3900, out);
    }
  };
  std::vector<KV> out;
  uint64_t n = 0;
  Spawn(cluster.simulator(), Driver::Go(RemoteOps(ctx), built.first, &out,
                                        &n));
  cluster.simulator().Run();
  EXPECT_EQ(n, 1900u);
  ASSERT_EQ(out.size(), 1900u);
  EXPECT_EQ(out.front().key, 100u);
  EXPECT_EQ(out.back().key, 3898u);
  // ~211 leaves scanned in batches of 8 (one signaled head read + one
  // batch per group): round trips must be far below the per-leaf count.
  EXPECT_LT(ctx.round_trips, 110u);
}

TEST(LeafLevelTest, CompactChainReclaimsTombstones) {
  Cluster cluster(Config(), 16 << 20);
  LeafLevel::BuildResult built;
  ASSERT_TRUE(LeafLevel::Build(cluster.fabric(), MakeData(300),
                               MakeIndexConfig(4), &built)
                  .ok());
  ClientContext ctx(0, cluster.fabric(), kPage, 1);

  struct Driver {
    static Task<> Go(RemoteOps ops, rdma::RemotePtr first,
                     uint64_t* reclaimed) {
      for (Key k = 0; k < 300; k += 3) {
        EXPECT_TRUE(
            (co_await LeafLevel::DeleteAt(ops, first, k * 2)).ok());
      }
      EXPECT_TRUE((co_await LeafLevel::DeleteAt(ops, first, 1)).IsNotFound());
      *reclaimed = co_await LeafLevel::CompactChain(ops, first);
    }
  };
  uint64_t reclaimed = 0;
  Spawn(cluster.simulator(),
        Driver::Go(RemoteOps(ctx), built.first, &reclaimed));
  cluster.simulator().Run();
  EXPECT_EQ(reclaimed, 100u);

  uint64_t live = 0;
  uint64_t dead = 0;
  struct Count {
    static Task<> Go(RemoteOps ops, rdma::RemotePtr first, uint64_t* live,
                     uint64_t* dead) {
      (void)co_await LeafLevel::CountChain(ops, first, live, dead);
    }
  };
  Spawn(cluster.simulator(),
        Count::Go(RemoteOps(ctx), built.first, &live, &dead));
  cluster.simulator().Run();
  EXPECT_EQ(live, 200u);
  EXPECT_EQ(dead, 0u);
}

TEST(LeafLevelTest, RebuildHeadNodesBypassesStaleHeads) {
  Cluster cluster(Config(), 16 << 20);
  LeafLevel::BuildResult built;
  ASSERT_TRUE(LeafLevel::Build(cluster.fabric(), MakeData(500),
                               MakeIndexConfig(4), &built)
                  .ok());
  ClientContext ctx(0, cluster.fabric(), kPage, 1);

  // Split many leaves (insert into every gap).
  struct Churn {
    static Task<> Go(RemoteOps ops, rdma::RemotePtr first) {
      for (Key k = 0; k < 500; ++k) {
        LeafLevel::SplitInfo split;
        (void)co_await LeafLevel::InsertAt(ops, first, k * 2 + 1, k,
                                           &split);
      }
      (void)co_await LeafLevel::RebuildHeadNodes(ops, first, 4);
    }
  };
  Spawn(cluster.simulator(), Churn::Go(RemoteOps(ctx), built.first));
  cluster.simulator().Run();

  // After the rebuild a fresh scan sees everything, and the prefetch
  // efficiency is restored (few round trips per leaf).
  ClientContext ctx2(1, cluster.fabric(), kPage, 2);
  struct Driver {
    static Task<> Go(RemoteOps ops, rdma::RemotePtr start, uint64_t* n) {
      *n = co_await LeafLevel::ScanChain(ops, start, 0, 1000000, nullptr);
    }
  };
  uint64_t n = 0;
  Spawn(cluster.simulator(), Driver::Go(RemoteOps(ctx2), built.first, &n));
  cluster.simulator().Run();
  EXPECT_EQ(n, 1000u);
  const uint64_t leaves = 1000 / 9 + 1;
  EXPECT_LT(ctx2.round_trips, leaves)
      << "rebuilt heads must batch most leaf reads";
}

}  // namespace
}  // namespace namtree::index
