// Direct tests of the one-sided page protocol (Listing 4 primitives):
// remote spinlock reads, CAS lock acquisition under contention, write-back
// unlock ordering, and RDMA_ALLOC.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "btree/page.h"
#include "index/remote_ops.h"
#include "nam/cluster.h"

namespace namtree::index {
namespace {

using btree::PageView;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

struct Rig {
  Rig() : cluster(Config(), 1 << 20) {
    ptr = cluster.memory_server(0).region().AllocateLocal(kPage);
    PageView view(cluster.memory_server(0).region().at(ptr.offset()), kPage);
    view.InitLeaf(btree::kInfinityKey, 0);
  }

  ~Rig() {
    // The Listing 4 primitives must never trip the verb-protocol auditor.
    EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
        << cluster.fabric().CheckAuditClean().ToString();
  }

  static rdma::FabricConfig Config() {
    rdma::FabricConfig config;
    config.num_memory_servers = 2;
    return config;
  }

  static constexpr uint32_t kPage = 256;

  ClientContext MakeClient(uint32_t id) {
    return ClientContext(id, cluster.fabric(), kPage, id + 1);
  }

  Cluster cluster;
  rdma::RemotePtr ptr;
};

Task<> LockModifyUnlock(RemoteOps ops, rdma::RemotePtr ptr,
                        btree::Key key) {
  uint8_t* buf = ops.ctx().page_a();
  EXPECT_TRUE((co_await ops.LockPage(ptr, buf)).ok());
  PageView view(buf, Rig::kPage);
  EXPECT_TRUE(view.LeafInsert(key, key));
  EXPECT_TRUE((co_await ops.WriteUnlockPage(ptr, buf)).ok());
}

TEST(RemoteOpsTest, ContendedLockSerializesWriters) {
  Rig rig;
  rig.cluster.fabric().SetNumClients(10);
  std::vector<std::unique_ptr<ClientContext>> ctxs;
  for (uint32_t c = 0; c < 10; ++c) {
    ctxs.push_back(std::make_unique<ClientContext>(
        c, rig.cluster.fabric(), Rig::kPage, c));
    Spawn(rig.cluster.simulator(),
          LockModifyUnlock(RemoteOps(*ctxs[c]), rig.ptr, c));
  }
  rig.cluster.simulator().Run();

  // All ten inserts took effect despite racing on the same page.
  PageView view(rig.cluster.memory_server(0).region().at(rig.ptr.offset()),
                Rig::kPage);
  EXPECT_EQ(view.count(), 10u);
  EXPECT_FALSE(btree::IsLocked(view.version_word()));
  // Version advanced by exactly one lock/unlock cycle per writer.
  EXPECT_EQ(btree::VersionOf(view.version_word()), 2u * 10u);
  for (btree::Key k = 0; k < 10; ++k) {
    EXPECT_GE(view.LeafFindLive(k), 0) << "lost update for key " << k;
  }
}

Task<> ObserveSpin(RemoteOps ops, rdma::RemotePtr ptr, uint64_t* version) {
  // Let the holder's CAS land first so the read observes the locked word.
  co_await sim::Delay(ops.fabric().simulator(), 20 * kMicrosecond);
  uint8_t* buf = ops.ctx().page_a();
  const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
  EXPECT_TRUE(read.ok());
  *version = read.version;
}

Task<> HoldLock(RemoteOps ops, rdma::RemotePtr ptr, SimTime hold) {
  uint8_t* buf = ops.ctx().page_a();
  EXPECT_TRUE((co_await ops.LockPage(ptr, buf)).ok());
  co_await sim::Delay(ops.fabric().simulator(), hold);
  EXPECT_TRUE((co_await ops.WriteUnlockPage(ptr, buf)).ok());
}

TEST(RemoteOpsTest, ReadersSpinWhileLocked) {
  Rig rig;
  rig.cluster.fabric().SetNumClients(2);
  auto holder = rig.MakeClient(0);
  auto reader = rig.MakeClient(1);
  uint64_t version = 0;
  Spawn(rig.cluster.simulator(),
        HoldLock(RemoteOps(holder), rig.ptr, 100 * kMicrosecond));
  Spawn(rig.cluster.simulator(),
        ObserveSpin(RemoteOps(reader), rig.ptr, &version));
  const SimTime end = rig.cluster.simulator().Run();
  // The reader could not return before the lock was released.
  EXPECT_GE(end, 100 * kMicrosecond);
  EXPECT_GT(reader.lock_waits, 0u);
  EXPECT_FALSE(btree::IsLocked(version));
}

Task<> TryLockOnce(RemoteOps ops, rdma::RemotePtr ptr, uint64_t version,
                   bool* won) {
  *won = (co_await ops.TryLockPage(ptr, version)).ok();
}

TEST(RemoteOpsTest, StaleVersionCasFails) {
  Rig rig;
  rig.cluster.fabric().SetNumClients(2);
  auto a = rig.MakeClient(0);
  auto b = rig.MakeClient(1);
  bool won_a = false;
  bool won_b = false;
  // Both try to lock with version 0; the remote CAS admits exactly one.
  Spawn(rig.cluster.simulator(), TryLockOnce(RemoteOps(a), rig.ptr, 0,
                                             &won_a));
  Spawn(rig.cluster.simulator(), TryLockOnce(RemoteOps(b), rig.ptr, 0,
                                             &won_b));
  rig.cluster.simulator().Run();
  EXPECT_NE(won_a, won_b) << "exactly one CAS may win";
}

Task<> AllocSome(RemoteOps ops, uint32_t server, int n,
                 std::vector<uint64_t>* offsets) {
  for (int i = 0; i < n; ++i) {
    const AllocResult alloc = co_await ops.AllocPage(server);
    EXPECT_TRUE(alloc.ok()) << alloc.status.ToString();
    offsets->push_back(alloc.ptr.offset());
  }
}

TEST(RemoteOpsTest, ConcurrentRemoteAllocationIsDisjoint) {
  Rig rig;
  rig.cluster.fabric().SetNumClients(4);
  std::vector<std::unique_ptr<ClientContext>> ctxs;
  std::vector<uint64_t> offsets;
  for (uint32_t c = 0; c < 4; ++c) {
    ctxs.push_back(std::make_unique<ClientContext>(
        c, rig.cluster.fabric(), Rig::kPage, c));
    Spawn(rig.cluster.simulator(),
          AllocSome(RemoteOps(*ctxs[c]), 1, 20, &offsets));
  }
  rig.cluster.simulator().Run();
  std::set<uint64_t> unique(offsets.begin(), offsets.end());
  EXPECT_EQ(unique.size(), 80u) << "allocations must never overlap";
}

Task<> AllocUntilFull(RemoteOps ops, uint32_t server, uint64_t* successes,
                      Status* last) {
  for (;;) {
    const AllocResult alloc = co_await ops.AllocPage(server);
    if (!alloc.ok()) {
      *last = alloc.status;
      co_return;
    }
    (*successes)++;
  }
}

TEST(RemoteOpsTest, AllocationExhaustionReturnsOutOfMemory) {
  rdma::FabricConfig config;
  config.num_memory_servers = 1;
  Cluster cluster(config, 16 * 1024);  // tiny region
  ClientContext ctx(0, cluster.fabric(), 1024, 1);
  uint64_t successes = 0;
  Status last;
  Spawn(cluster.simulator(),
        AllocUntilFull(RemoteOps(ctx), 0, &successes, &last));
  cluster.simulator().Run();
  // Region header occupies 256 bytes; 15 pages of 1024 fit.
  EXPECT_EQ(successes, 15u);
  EXPECT_TRUE(last.IsOutOfMemory()) << last.ToString();
}

TEST(RemoteOpsTest, RoundRobinAllocationScatters) {
  Rig rig;
  rig.cluster.fabric().SetNumClients(1);
  auto ctx = rig.MakeClient(0);

  struct Runner {
    static Task<> Go(RemoteOps ops, std::vector<uint32_t>* servers) {
      for (int i = 0; i < 8; ++i) {
        const AllocResult alloc = co_await ops.AllocPageRoundRobin();
        EXPECT_TRUE(alloc.ok()) << alloc.status.ToString();
        servers->push_back(alloc.ptr.server_id());
      }
    }
  };
  std::vector<uint32_t> servers;
  Spawn(rig.cluster.simulator(), Runner::Go(RemoteOps(ctx), &servers));
  rig.cluster.simulator().Run();
  EXPECT_EQ(servers, (std::vector<uint32_t>{0, 1, 0, 1, 0, 1, 0, 1}));
}

}  // namespace
}  // namespace namtree::index
