// Tests for the RDMA verb-protocol audit layer (src/rdma/audit.h): the
// clean one-sided protocol must produce zero findings, and deliberately
// seeded violations — injected through raw fabric verbs, bypassing the
// RemoteOps protocol helpers — must each be flagged.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "btree/types.h"
#include "nam/cluster.h"
#include "rdma/audit.h"
#include "rdma/fabric.h"

namespace namtree::rdma {
namespace {

using nam::Cluster;
using sim::Spawn;
using sim::Task;

constexpr uint32_t kPage = 256;

struct Rig {
  Rig() : cluster(Config(), 1 << 20) {
    cluster.fabric().SetNumClients(4);
    page = cluster.memory_server(0).region().AllocateLocal(kPage);
  }

  static FabricConfig Config() {
    FabricConfig config;
    config.num_memory_servers = 1;
    return config;
  }

  VerbAuditor* auditor() { return cluster.fabric().auditor(); }
  Fabric& fabric() { return cluster.fabric(); }

  /// Runs one full clean protocol cycle as `client`: CAS-lock the version
  /// word, WRITE back the locked image, FAA(+1) to release. Afterwards the
  /// word is tracked by the auditor.
  Task<> CleanCycle(uint32_t client, uint64_t payload) {
    const uint64_t version =
        (co_await fabric().CompareAndSwap(client, page, expected_version_,
                                          expected_version_ | 1))
            .value;
    EXPECT_EQ(version, expected_version_) << "unexpected lock contention";
    std::vector<uint8_t> image(kPage, 0);
    const uint64_t locked = expected_version_ | 1;
    std::memcpy(image.data(), &locked, 8);
    std::memcpy(image.data() + 8, &payload, 8);
    co_await fabric().Write(client, page, image.data(), kPage);
    co_await fabric().FetchAndAdd(client, page, 1);
    expected_version_ += 2;
  }

  Cluster cluster;
  RemotePtr page;
  uint64_t expected_version_ = 0;
};

#define REQUIRE_AUDITOR(rig)                                         \
  if ((rig).auditor() == nullptr) {                                  \
    GTEST_SKIP() << "built with -DNAMTREE_AUDIT=OFF";                \
  }

TEST(AuditTest, CleanProtocolReportsNothing) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  for (int i = 0; i < 3; ++i) {
    Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0x1000 + i));
    rig.cluster.simulator().Run();
  }
  EXPECT_EQ(rig.auditor()->tracked_words(), 1u);
  EXPECT_EQ(rig.auditor()->violation_count(), 0u);
  EXPECT_TRUE(rig.fabric().CheckAuditClean().ok());
}

Task<> RawWrite(Fabric& fabric, uint32_t client, RemotePtr dst,
                uint64_t word, uint64_t payload) {
  std::vector<uint8_t> image(kPage, 0);
  std::memcpy(image.data(), &word, 8);
  std::memcpy(image.data() + 8, &payload, 8);
  co_await fabric.Write(client, dst, image.data(), kPage);
}

TEST(AuditTest, WriteWithoutLockIsFlagged) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.cluster.simulator().Run();
  ASSERT_EQ(rig.auditor()->violation_count(), 0u);

  // Seed: publish a page image without CAS-ing the lock bit first. The
  // written word keeps the current (unlocked) version, so only the missing
  // lock is at fault.
  Spawn(rig.cluster.simulator(),
        RawWrite(rig.fabric(), 1, rig.page, /*word=*/2, 0xBB));
  rig.cluster.simulator().Run();

  EXPECT_EQ(rig.auditor()->CountOfKind(ViolationKind::kWriteWithoutLock), 1u);
  // The unlocked write also races the previous (disciplined) write-back:
  // nothing orders client 1 after client 0's release.
  EXPECT_EQ(rig.auditor()->CountOfKind(ViolationKind::kRemoteRace), 1u);
  EXPECT_EQ(rig.auditor()->violation_count(), 2u);
  const Status status = rig.fabric().CheckAuditClean();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("WriteWithoutLock"), std::string::npos)
      << status.ToString();
  EXPECT_EQ(rig.auditor()->violations()[0].client, 1u);
}

Task<> RawFaa(Fabric& fabric, uint32_t client, RemotePtr target,
              uint64_t add) {
  (void)co_await fabric.FetchAndAdd(client, target, add);
}

TEST(AuditTest, DoubleUnlockIsFlagged) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.cluster.simulator().Run();

  // Seed: a second FAA after the release — the lock bit is already clear.
  Spawn(rig.cluster.simulator(), RawFaa(rig.fabric(), 0, rig.page, 1));
  rig.cluster.simulator().Run();

  EXPECT_EQ(rig.auditor()->CountOfKind(ViolationKind::kUnlockWithoutLock),
            1u);
}

Task<> RawCas(Fabric& fabric, uint32_t client, RemotePtr target,
              uint64_t expected, uint64_t desired) {
  (void)co_await fabric.CompareAndSwap(client, target, expected, desired);
}

TEST(AuditTest, UnlockByNonHolderIsFlagged) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.cluster.simulator().Run();

  // Client 1 locks; client 2 releases. The release itself is well-formed
  // (lock bit set, version bumps), but the wrong client issued it.
  Spawn(rig.cluster.simulator(), RawCas(rig.fabric(), 1, rig.page, 2, 3));
  rig.cluster.simulator().Run();
  Spawn(rig.cluster.simulator(), RawFaa(rig.fabric(), 2, rig.page, 1));
  rig.cluster.simulator().Run();

  EXPECT_EQ(rig.auditor()->CountOfKind(ViolationKind::kUnlockByNonHolder),
            1u);
}

TEST(AuditTest, VersionRegressionIsFlagged) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  for (int i = 0; i < 2; ++i) {
    Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA + i));
    rig.cluster.simulator().Run();
  }
  ASSERT_EQ(rig.auditor()->violation_count(), 0u);

  // Seed: CAS the version word from 4 back to 0 — readers validating
  // against a cached version 4 would wrongly conclude the page is intact.
  Spawn(rig.cluster.simulator(), RawCas(rig.fabric(), 1, rig.page, 4, 0));
  rig.cluster.simulator().Run();

  EXPECT_EQ(rig.auditor()->CountOfKind(ViolationKind::kVersionRegression),
            1u);
}

Task<> RawRead(Fabric& fabric, uint32_t client, RemotePtr src) {
  std::vector<uint8_t> image(kPage, 0);
  co_await fabric.Read(client, src, image.data(), kPage);
}

TEST(AuditTest, TornReadDuringUnlockedWriteIsFlagged) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.cluster.simulator().Run();
  ASSERT_EQ(rig.auditor()->violation_count(), 0u);

  // Seed: an unlocked write-back racing a reader. The read's 16-byte
  // request overtakes the page-sized write payload on the wire, so its
  // copy-out lands while the unprotected write is still in flight — the
  // paper-hardware equivalent of observing a half-DMA'd page.
  Spawn(rig.cluster.simulator(), RawRead(rig.fabric(), 2, rig.page));
  Spawn(rig.cluster.simulator(),
        RawWrite(rig.fabric(), 1, rig.page, /*word=*/2, 0xCC));
  rig.cluster.simulator().Run();

  EXPECT_GE(rig.auditor()->CountOfKind(ViolationKind::kTornRead), 1u);
  EXPECT_GE(rig.auditor()->CountOfKind(ViolationKind::kWriteWithoutLock), 1u);
  // The torn-read finding names the reader.
  for (const Violation& v : rig.auditor()->violations()) {
    if (v.kind == ViolationKind::kTornRead) {
      EXPECT_EQ(v.client, 2u);
    }
  }
}

/// The doorbell-batched release of RemoteOps::WriteUnlockPage, driven as a
/// raw chain: CAS-lock, then one PostChain of {full-page WRITE carrying the
/// locked word, 8-byte WRITE installing the clean +2 version}.
Task<> ChainedCycle(Fabric& fabric, RemotePtr page, uint32_t client,
                    uint64_t version, uint64_t payload) {
  const uint64_t locked = btree::MakeLockedWord(version, client);
  const uint64_t observed =
      (co_await fabric.CompareAndSwap(client, page, version, locked)).value;
  EXPECT_EQ(observed, version) << "unexpected lock contention";
  std::vector<uint8_t> image(kPage, 0);
  std::memcpy(image.data(), &locked, 8);
  std::memcpy(image.data() + 8, &payload, 8);
  const uint64_t unlocked = version + 2;
  std::vector<Fabric::ChainOp> chain;
  chain.push_back(Fabric::ChainOp::Write(page, image.data(), kPage));
  chain.push_back(Fabric::ChainOp::Write(page, &unlocked, 8));
  co_await fabric.PostChain(client, std::move(chain));
}

TEST(AuditTest, ChainedWriteUnlockShapePasses) {
  // The combined {page WRITE, unlock WRITE} chain is the sanctioned release
  // shape: the auditor must judge the word-sized lock-clearing tail by the
  // unlock rules (holder, version bump) and report nothing.
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.cluster.simulator().Run();
  for (int i = 0; i < 3; ++i) {
    Spawn(rig.cluster.simulator(),
          ChainedCycle(rig.fabric(), rig.page, 0, 2 + 2 * i, 0xB0 + i));
    rig.cluster.simulator().Run();
  }
  EXPECT_EQ(rig.auditor()->violation_count(), 0u)
      << rig.fabric().CheckAuditClean().ToString();
  EXPECT_TRUE(rig.auditor()->LockedWords().empty());
}

Task<> RawWordWrite(Fabric& fabric, uint32_t client, RemotePtr dst,
                    uint64_t word) {
  co_await fabric.Write(client, dst, &word, 8);
}

TEST(AuditTest, UnlockShapedWriteWithoutLockIsFlagged) {
  // The same word-sized lock-clearing WRITE outside a locked cycle — a torn
  // or replayed chain tail hitting an unlocked word — still reports, with
  // the precise unlock verdict rather than a generic write-without-lock.
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.cluster.simulator().Run();
  ASSERT_EQ(rig.auditor()->violation_count(), 0u);

  Spawn(rig.cluster.simulator(),
        RawWordWrite(rig.fabric(), 1, rig.page, /*word=*/4));
  rig.cluster.simulator().Run();

  EXPECT_EQ(rig.auditor()->CountOfKind(ViolationKind::kUnlockWithoutLock),
            1u);
  EXPECT_EQ(rig.auditor()->violation_count(), 1u);
}

TEST(AuditTest, UnlockShapedWriteByNonHolderIsFlagged) {
  // Client 1 holds the lock; client 2 posts the well-formed unlock WRITE.
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.cluster.simulator().Run();

  Spawn(rig.cluster.simulator(),
        RawCas(rig.fabric(), 1, rig.page, 2, btree::MakeLockedWord(2, 1)));
  rig.cluster.simulator().Run();
  Spawn(rig.cluster.simulator(),
        RawWordWrite(rig.fabric(), 2, rig.page, /*word=*/4));
  rig.cluster.simulator().Run();

  EXPECT_EQ(rig.auditor()->CountOfKind(ViolationKind::kUnlockByNonHolder),
            1u);
}

TEST(AuditTest, DisabledAuditorRecordsNothing) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  rig.auditor()->set_enabled(false);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.cluster.simulator().Run();
  Spawn(rig.cluster.simulator(),
        RawWrite(rig.fabric(), 1, rig.page, /*word=*/2, 0xBB));
  rig.cluster.simulator().Run();
  EXPECT_EQ(rig.auditor()->tracked_words(), 0u);
  EXPECT_EQ(rig.auditor()->violation_count(), 0u);
}

TEST(AuditTest, ViolationLogSurvivesClearAndReset) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.cluster.simulator().Run();
  Spawn(rig.cluster.simulator(), RawFaa(rig.fabric(), 0, rig.page, 1));
  rig.cluster.simulator().Run();
  ASSERT_EQ(rig.auditor()->violation_count(), 1u);
  EXPECT_FALSE(rig.auditor()->violations()[0].Describe().empty());

  rig.auditor()->ClearViolations();
  EXPECT_EQ(rig.auditor()->violation_count(), 0u);
  EXPECT_EQ(rig.auditor()->tracked_words(), 1u);  // tracking is kept

  rig.auditor()->Reset();
  EXPECT_EQ(rig.auditor()->tracked_words(), 0u);
}

}  // namespace
}  // namespace namtree::rdma
