// Integration tests for the distributed index designs (coarse-grained
// two-sided, fine-grained one-sided, hybrid, coarse-grained one-sided)
// running on the simulated NAM cluster: bulk load, point/range queries,
// inserts with splits, updates, deletes with epoch GC, duplicates, skewed
// placement, concurrent clients, and head-node prefetching.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "index/coarse_grained.h"
#include "index/coarse_one_sided.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "index/index.h"
#include "nam/cluster.h"
#include "ycsb/workload.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using btree::Value;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

enum class Design {
  kCoarseRange,
  kCoarseHash,
  kFine,
  kHybrid,
  kCoarseOneSided,
};

std::string DesignName(Design d) {
  switch (d) {
    case Design::kCoarseRange:
      return "CoarseRange";
    case Design::kCoarseHash:
      return "CoarseHash";
    case Design::kFine:
      return "Fine";
    case Design::kHybrid:
      return "Hybrid";
    case Design::kCoarseOneSided:
      return "CoarseOneSided";
  }
  return "?";
}

struct TestRig {
  explicit TestRig(Design design, uint32_t servers = 4,
                 std::vector<double> weights = {},
                 uint32_t page_size = 256)
      : config_template(MakeFabricConfig(servers)),
        cluster(config_template, 64ull << 20) {
    index_config.page_size = page_size;
    index_config.head_node_interval = 4;
    index_config.partition_weights = std::move(weights);
    switch (design) {
      case Design::kCoarseRange:
        index_config.partition = PartitionKind::kRange;
        index = std::make_unique<CoarseGrainedIndex>(cluster, index_config);
        break;
      case Design::kCoarseHash:
        index_config.partition = PartitionKind::kHash;
        index = std::make_unique<CoarseGrainedIndex>(cluster, index_config);
        break;
      case Design::kFine:
        index = std::make_unique<FineGrainedIndex>(cluster, index_config);
        break;
      case Design::kHybrid:
        index_config.partition = PartitionKind::kRange;
        index = std::make_unique<HybridIndex>(cluster, index_config);
        break;
      case Design::kCoarseOneSided:
        index_config.partition = PartitionKind::kRange;
        index = std::make_unique<CoarseOneSidedIndex>(cluster, index_config);
        break;
    }
  }

  ~TestRig() {
    // Whatever the test did, the one-sided lock/version discipline must
    // have been respected end to end.
    EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
        << cluster.fabric().CheckAuditClean().ToString();
  }

  static rdma::FabricConfig MakeFabricConfig(uint32_t servers) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = servers;
    fc.workers_per_server = 4;
    return fc;
  }

  ClientContext MakeClient(uint32_t id, uint64_t seed = 1) {
    return ClientContext(id, cluster.fabric(), index_config.page_size, seed);
  }

  rdma::FabricConfig config_template;
  Cluster cluster;
  IndexConfig index_config;
  std::unique_ptr<DistributedIndex> index;
};

std::vector<KV> MakeData(uint64_t n, Key stride = 2) {
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * stride, i + 1});
  return data;
}

// ---- Single-client driver helpers ------------------------------------------

Task<> LookupMany(DistributedIndex& index, ClientContext& ctx,
                  std::vector<Key> keys, std::vector<LookupResult>* out) {
  for (Key k : keys) {
    out->push_back(co_await index.Lookup(ctx, k));
  }
}

Task<> ScanOne(DistributedIndex& index, ClientContext& ctx, Key lo, Key hi,
               std::vector<KV>* out, uint64_t* count) {
  *count = co_await index.Scan(ctx, lo, hi, out);
}

Task<> InsertMany(DistributedIndex& index, ClientContext& ctx,
                  std::vector<KV> kvs, uint64_t* failures) {
  for (const KV& kv : kvs) {
    if (!(co_await index.Insert(ctx, kv.key, kv.value)).ok()) {
      (*failures)++;
    }
  }
}

Task<> DeleteMany(DistributedIndex& index, ClientContext& ctx,
                  std::vector<Key> keys, std::vector<bool>* ok) {
  for (Key k : keys) {
    ok->push_back((co_await index.Delete(ctx, k)).ok());
  }
}

Task<> GcOnce(DistributedIndex& index, ClientContext& ctx,
              uint64_t* reclaimed) {
  *reclaimed = co_await index.GarbageCollect(ctx);
}

class IndexDesignTest : public ::testing::TestWithParam<Design> {};

INSTANTIATE_TEST_SUITE_P(Designs, IndexDesignTest,
                         ::testing::Values(Design::kCoarseRange,
                                           Design::kCoarseHash, Design::kFine,
                                           Design::kHybrid,
                                           Design::kCoarseOneSided),
                         [](const auto& info) {
                           return DesignName(info.param);
                         });

TEST_P(IndexDesignTest, BulkLoadThenLookup) {
  TestRig setup(GetParam());
  const auto data = MakeData(20000);
  ASSERT_TRUE(setup.index->BulkLoad(data).ok());

  auto ctx = setup.MakeClient(0);
  std::vector<Key> probes;
  std::vector<Key> expected_hits;
  for (uint64_t i = 0; i < 20000; i += 97) {
    probes.push_back(i * 2);      // hit
    probes.push_back(i * 2 + 1);  // miss (odd keys absent)
  }
  std::vector<LookupResult> results;
  Spawn(setup.cluster.simulator(),
        LookupMany(*setup.index, ctx, probes, &results));
  setup.cluster.simulator().Run();

  ASSERT_EQ(results.size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    const bool should_hit = (probes[i] % 2 == 0);
    EXPECT_EQ(results[i].found, should_hit) << "key " << probes[i];
    if (should_hit) {
      EXPECT_EQ(results[i].value, probes[i] / 2 + 1);
    }
  }
}

TEST_P(IndexDesignTest, ScansMatchReferenceAcrossPartitions) {
  TestRig setup(GetParam());
  const auto data = MakeData(15000, 3);
  ASSERT_TRUE(setup.index->BulkLoad(data).ok());
  auto ctx = setup.MakeClient(0);

  struct Range {
    Key lo, hi;
  };
  // Cross-partition ranges (partitions split around multiples of ~11250).
  const std::vector<Range> ranges = {{0, 100},      {2999, 3300},
                                     {11000, 12000}, {0, 45000},
                                     {44990, 45010}, {20000, 20001}};
  for (const Range& r : ranges) {
    std::vector<KV> out;
    uint64_t count = 0;
    Spawn(setup.cluster.simulator(),
          ScanOne(*setup.index, ctx, r.lo, r.hi, &out, &count));
    setup.cluster.simulator().Run();

    std::vector<KV> expected;
    for (const KV& kv : data) {
      if (kv.key >= r.lo && kv.key < r.hi) expected.push_back(kv);
    }
    ASSERT_EQ(count, expected.size())
        << "range [" << r.lo << "," << r.hi << ")";
    ASSERT_EQ(out.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(out[i].key, expected[i].key);
      EXPECT_EQ(out[i].value, expected[i].value);
    }
  }
}

TEST_P(IndexDesignTest, InsertsForceSplitsAndStayVisible) {
  TestRig setup(GetParam());
  const auto data = MakeData(2000, 4);
  ASSERT_TRUE(setup.index->BulkLoad(data).ok());
  auto ctx = setup.MakeClient(0);

  // Insert three new keys into every gap region: forces many leaf splits
  // (page size 256 -> leaf capacity 10).
  std::vector<KV> inserts;
  Rng rng(5);
  for (uint64_t i = 0; i < 2000; ++i) {
    inserts.push_back({i * 4 + 1, 100000 + i});
    inserts.push_back({i * 4 + 2, 200000 + i});
    inserts.push_back({i * 4 + 3, 300000 + i});
  }
  // Shuffle to avoid purely monotonic split patterns.
  for (size_t i = inserts.size() - 1; i > 0; --i) {
    std::swap(inserts[i], inserts[rng.NextBelow(i + 1)]);
  }
  uint64_t failures = 0;
  Spawn(setup.cluster.simulator(),
        InsertMany(*setup.index, ctx, inserts, &failures));
  setup.cluster.simulator().Run();
  EXPECT_EQ(failures, 0u);

  // Everything (old + new) must be visible via scan, in order.
  std::vector<KV> out;
  uint64_t count = 0;
  Spawn(setup.cluster.simulator(),
        ScanOne(*setup.index, ctx, 0, 8000, &out, &count));
  setup.cluster.simulator().Run();
  EXPECT_EQ(count, 8000u);
  ASSERT_EQ(out.size(), 8000u);
  for (uint64_t k = 0; k < 8000; ++k) {
    EXPECT_EQ(out[k].key, k) << "missing key after splits";
  }
}

TEST_P(IndexDesignTest, DeleteHidesAndGcReclaims) {
  TestRig setup(GetParam());
  const auto data = MakeData(5000);
  ASSERT_TRUE(setup.index->BulkLoad(data).ok());
  auto ctx = setup.MakeClient(0);

  std::vector<Key> to_delete;
  for (uint64_t i = 0; i < 5000; i += 2) to_delete.push_back(i * 2);
  std::vector<bool> ok;
  Spawn(setup.cluster.simulator(),
        DeleteMany(*setup.index, ctx, to_delete, &ok));
  setup.cluster.simulator().Run();
  for (bool b : ok) EXPECT_TRUE(b);

  // Deleted keys miss; others remain.
  std::vector<LookupResult> results;
  Spawn(setup.cluster.simulator(),
        LookupMany(*setup.index, ctx, {0, 4, 2, 6, 9998}, &results));
  setup.cluster.simulator().Run();
  EXPECT_FALSE(results[0].found);
  EXPECT_FALSE(results[1].found);
  EXPECT_TRUE(results[2].found);
  EXPECT_TRUE(results[3].found);
  EXPECT_TRUE(results[4].found);

  // Deleting a missing key reports NotFound.
  std::vector<bool> miss;
  Spawn(setup.cluster.simulator(),
        DeleteMany(*setup.index, ctx, {0}, &miss));
  setup.cluster.simulator().Run();
  EXPECT_FALSE(miss[0]);

  uint64_t reclaimed = 0;
  Spawn(setup.cluster.simulator(), GcOnce(*setup.index, ctx, &reclaimed));
  setup.cluster.simulator().Run();
  EXPECT_EQ(reclaimed, to_delete.size());

  // Post-GC scans still correct.
  uint64_t count = 0;
  Spawn(setup.cluster.simulator(),
        ScanOne(*setup.index, ctx, 0, 20000, nullptr, &count));
  setup.cluster.simulator().Run();
  EXPECT_EQ(count, 5000u - to_delete.size());
}

TEST_P(IndexDesignTest, DuplicateKeysSurviveSplits) {
  TestRig setup(GetParam());
  const auto data = MakeData(500, 10);
  ASSERT_TRUE(setup.index->BulkLoad(data).ok());
  auto ctx = setup.MakeClient(0);

  // 60 duplicates of one key (leaf capacity is 10).
  std::vector<KV> dupes;
  for (uint64_t i = 0; i < 60; ++i) dupes.push_back({2500, 7000 + i});
  uint64_t failures = 0;
  Spawn(setup.cluster.simulator(),
        InsertMany(*setup.index, ctx, dupes, &failures));
  setup.cluster.simulator().Run();
  EXPECT_EQ(failures, 0u);

  std::vector<KV> out;
  uint64_t count = 0;
  Spawn(setup.cluster.simulator(),
        ScanOne(*setup.index, ctx, 2500, 2501, &out, &count));
  setup.cluster.simulator().Run();
  ASSERT_EQ(count, 61u);  // bulk-loaded entry + 60 duplicates
  std::set<Value> values;
  for (const KV& kv : out) values.insert(kv.value);
  EXPECT_EQ(values.size(), 61u);

  // Point lookups still find neighbours around the duplicate blob.
  std::vector<LookupResult> results;
  Spawn(setup.cluster.simulator(),
        LookupMany(*setup.index, ctx, {2490, 2500, 2510}, &results));
  setup.cluster.simulator().Run();
  EXPECT_TRUE(results[0].found);
  EXPECT_TRUE(results[1].found);
  EXPECT_TRUE(results[2].found);
}

TEST_P(IndexDesignTest, ConcurrentClientsDisjointRanges) {
  TestRig setup(GetParam());
  const auto data = MakeData(4000, 16);
  ASSERT_TRUE(setup.index->BulkLoad(data).ok());
  setup.cluster.fabric().SetNumClients(8);

  // 8 clients concurrently insert into disjoint gap slots.
  std::vector<std::unique_ptr<ClientContext>> ctxs;
  std::vector<uint64_t> failures(8, 0);
  for (uint32_t c = 0; c < 8; ++c) {
    ctxs.push_back(
        std::make_unique<ClientContext>(c, setup.cluster.fabric(),
                                        setup.index_config.page_size, c));
    std::vector<KV> inserts;
    for (uint64_t i = 0; i < 1500; ++i) {
      inserts.push_back({i * 16 + c + 1, c * 1000000 + i});
    }
    Spawn(setup.cluster.simulator(),
          InsertMany(*setup.index, *ctxs[c], std::move(inserts),
                     &failures[c]));
  }
  setup.cluster.simulator().Run();
  for (uint32_t c = 0; c < 8; ++c) EXPECT_EQ(failures[c], 0u);

  // Verify: every inserted key visible, global scan sorted with the right
  // cardinality.
  auto ctx = setup.MakeClient(0);
  std::vector<KV> out;
  uint64_t count = 0;
  Spawn(setup.cluster.simulator(),
        ScanOne(*setup.index, ctx, 0, 16ull * 4000ull, &out, &count));
  setup.cluster.simulator().Run();
  EXPECT_EQ(count, 4000u + 8u * 1500u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                             [](const KV& a, const KV& b) {
                               return a.key < b.key;
                             }));
  std::vector<LookupResult> results;
  std::vector<Key> probes;
  for (uint32_t c = 0; c < 8; ++c) probes.push_back(1499 * 16 + c + 1);
  Spawn(setup.cluster.simulator(),
        LookupMany(*setup.index, ctx, probes, &results));
  setup.cluster.simulator().Run();
  for (uint32_t c = 0; c < 8; ++c) {
    EXPECT_TRUE(results[c].found) << "client " << c << "'s key lost";
    EXPECT_EQ(results[c].value, c * 1000000ull + 1499);
  }
}

TEST_P(IndexDesignTest, ConcurrentMixedOpsKeepInvariants) {
  TestRig setup(GetParam());
  const auto data = MakeData(3000, 4);
  ASSERT_TRUE(setup.index->BulkLoad(data).ok());
  setup.cluster.fabric().SetNumClients(6);

  struct Driver {
    static Task<> Run(DistributedIndex& index, ClientContext& ctx,
                      uint64_t seed, uint64_t* inserted) {
      Rng rng(seed);
      for (int i = 0; i < 400; ++i) {
        const double a = rng.NextDouble();
        const Key k = rng.NextBelow(12000);
        if (a < 0.4) {
          if ((co_await index.Insert(ctx, k, k + seed)).ok()) (*inserted)++;
        } else if (a < 0.6) {
          (void)co_await index.Delete(ctx, k);
        } else if (a < 0.85) {
          (void)co_await index.Lookup(ctx, k);
        } else {
          (void)co_await index.Scan(ctx, k, k + 64, nullptr);
        }
      }
    }
  };

  std::vector<std::unique_ptr<ClientContext>> ctxs;
  std::vector<uint64_t> inserted(6, 0);
  for (uint32_t c = 0; c < 6; ++c) {
    ctxs.push_back(
        std::make_unique<ClientContext>(c, setup.cluster.fabric(),
                                        setup.index_config.page_size, c));
    Spawn(setup.cluster.simulator(),
          Driver::Run(*setup.index, *ctxs[c], c + 1, &inserted[c]));
  }
  setup.cluster.simulator().Run();

  // Global invariants: scan is sorted; every op completed (Run drained).
  auto ctx = setup.MakeClient(0);
  std::vector<KV> out;
  uint64_t count = 0;
  Spawn(setup.cluster.simulator(),
        ScanOne(*setup.index, ctx, 0, 48000, &out, &count));
  setup.cluster.simulator().Run();
  EXPECT_EQ(count, out.size());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                             [](const KV& a, const KV& b) {
                               return a.key < b.key;
                             }));
  uint64_t total_inserted = 0;
  for (uint64_t i : inserted) total_inserted += i;
  EXPECT_GT(total_inserted, 0u);
}

TEST_P(IndexDesignTest, UpdateAndLookupAll) {
  TestRig setup(GetParam());
  const auto data = MakeData(3000, 4);
  ASSERT_TRUE(setup.index->BulkLoad(data).ok());
  auto ctx = setup.MakeClient(0);

  struct Driver {
    static Task<> Go(DistributedIndex& index, ClientContext& ctx) {
      // In-place update of an existing key.
      EXPECT_TRUE((co_await index.Update(ctx, 400, 777777)).ok());
      LookupResult r = co_await index.Lookup(ctx, 400);
      EXPECT_TRUE(r.found);
      EXPECT_EQ(r.value, 777777u);

      // Updating a missing key reports NotFound and inserts nothing.
      EXPECT_TRUE((co_await index.Update(ctx, 401, 1)).IsNotFound());
      EXPECT_FALSE((co_await index.Lookup(ctx, 401)).found);

      // LookupAll over duplicates, including runs longer than a leaf
      // (capacity 10 at P=256) that split across pages.
      for (uint64_t i = 0; i < 25; ++i) {
        EXPECT_TRUE((co_await index.Insert(ctx, 800, 9000 + i)).ok());
      }
      std::vector<btree::Value> values;
      const uint64_t n = co_await index.LookupAll(ctx, 800, &values);
      EXPECT_EQ(n, 26u);  // bulk entry + 25 duplicates
      EXPECT_EQ(values.size(), 26u);
      std::set<btree::Value> unique(values.begin(), values.end());
      EXPECT_EQ(unique.size(), 26u);

      // Update touches exactly one of the duplicates.
      EXPECT_TRUE((co_await index.Update(ctx, 800, 424242)).ok());
      values.clear();
      (void)co_await index.LookupAll(ctx, 800, &values);
      EXPECT_EQ(std::count(values.begin(), values.end(), 424242), 1);

      // Delete one duplicate; count drops by exactly one.
      EXPECT_TRUE((co_await index.Delete(ctx, 800)).ok());
      EXPECT_EQ(co_await index.LookupAll(ctx, 800, nullptr), 25u);

      // LookupAll of a missing key is empty.
      EXPECT_EQ(co_await index.LookupAll(ctx, 801, nullptr), 0u);
    }
  };
  Spawn(setup.cluster.simulator(), Driver::Go(*setup.index, ctx));
  setup.cluster.simulator().Run();
}

// ---- Design-specific behaviour ---------------------------------------------

TEST(SkewPlacementTest, CoarseRangeWeightsShiftDataToServerZero) {
  TestRig setup(Design::kCoarseRange, 4, {0.80, 0.12, 0.05, 0.03});
  const auto data = MakeData(10000);
  ASSERT_TRUE(setup.index->BulkLoad(data).ok());
  auto* cg = dynamic_cast<CoarseGrainedIndex*>(setup.index.get());
  ASSERT_NE(cg, nullptr);
  const auto s0 = cg->tree(0).GetStats();
  const auto s3 = cg->tree(3).GetStats();
  EXPECT_NEAR(static_cast<double>(s0.live_entries), 8000, 200);
  EXPECT_NEAR(static_cast<double>(s3.live_entries), 300, 100);
  // Requests spread uniformly over keys: ~80% of them route to server 0.
  uint32_t to_zero = 0;
  for (uint64_t i = 0; i < 10000; i += 10) {
    if (cg->partitioner().ServerFor(i * 2) == 0) to_zero++;
  }
  EXPECT_NEAR(to_zero, 800, 30);
}

TEST(SkewPlacementTest, FineGrainedSpreadsPagesEvenly) {
  TestRig setup(Design::kFine);
  const auto data = MakeData(20000);
  ASSERT_TRUE(setup.index->BulkLoad(data).ok());
  // Round-robin leaf placement: region fill within ~2 pages of each other.
  std::vector<uint64_t> allocated;
  for (uint32_t s = 0; s < 4; ++s) {
    allocated.push_back(setup.cluster.fabric().region(s)->allocated());
  }
  const uint64_t min = *std::min_element(allocated.begin(), allocated.end());
  const uint64_t max = *std::max_element(allocated.begin(), allocated.end());
  EXPECT_LE(max - min, 16ull * setup.index_config.page_size);
}

TEST(HybridDesignTest, RejectsHashPartitioning) {
  TestRig setup(Design::kHybrid);
  setup.index_config.partition = PartitionKind::kHash;
  HybridIndex hybrid(setup.cluster, setup.index_config);
  const auto data = MakeData(100);
  EXPECT_EQ(hybrid.BulkLoad(data).code(), StatusCode::kUnsupported);
}

TEST(HeadNodeTest, ScansWorkWithAndWithoutHeadNodes) {
  for (uint32_t interval : {0u, 2u, 4u, 16u}) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 4;
    Cluster cluster(fc, 64ull << 20);
    IndexConfig ic;
    ic.page_size = 256;
    ic.head_node_interval = interval;
    FineGrainedIndex index(cluster, ic);
    const auto data = MakeData(5000, 2);
    ASSERT_TRUE(index.BulkLoad(data).ok());
    ClientContext ctx(0, cluster.fabric(), ic.page_size, 1);
    std::vector<KV> out;
    uint64_t count = 0;
    Spawn(cluster.simulator(),
          ScanOne(index, ctx, 1000, 9000, &out, &count));
    cluster.simulator().Run();
    EXPECT_EQ(count, 4000u) << "interval " << interval;
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                               [](const KV& a, const KV& b) {
                                 return a.key < b.key;
                               }));
  }
}

TEST(HeadNodeTest, PrefetchReducesRoundTrips) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64ull << 20);

  auto measure = [&](uint32_t interval) {
    Cluster local_cluster(fc, 64ull << 20);
    IndexConfig ic;
    ic.page_size = 256;
    ic.head_node_interval = interval;
    FineGrainedIndex index(local_cluster, ic);
    const auto data = MakeData(20000, 2);
    EXPECT_TRUE(index.BulkLoad(data).ok());
    ClientContext ctx(0, local_cluster.fabric(), ic.page_size, 1);
    uint64_t count = 0;
    Spawn(local_cluster.simulator(),
          ScanOne(index, ctx, 0, 40000, nullptr, &count));
    local_cluster.simulator().Run();
    EXPECT_EQ(count, 20000u);
    return ctx.round_trips.value();
  };

  const uint64_t without = measure(0);
  const uint64_t with_heads = measure(16);
  EXPECT_LT(with_heads, without / 4)
      << "head-node prefetch must collapse per-leaf round trips";
}

TEST(HeadNodeTest, OutdatedHeadsFallBackAndRebuildRestoresThem) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  Cluster cluster(fc, 64ull << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.head_node_interval = 4;
  FineGrainedIndex index(cluster, ic);
  const auto data = MakeData(2000, 4);
  ASSERT_TRUE(index.BulkLoad(data).ok());
  ClientContext ctx(0, cluster.fabric(), ic.page_size, 1);

  // Splits make head nodes stale.
  std::vector<KV> inserts;
  for (uint64_t i = 0; i < 2000; ++i) {
    inserts.push_back({i * 4 + 1, i});
    inserts.push_back({i * 4 + 2, i});
  }
  uint64_t failures = 0;
  Spawn(cluster.simulator(),
        InsertMany(index, ctx, std::move(inserts), &failures));
  cluster.simulator().Run();
  ASSERT_EQ(failures, 0u);

  // Scans stay correct over stale heads.
  uint64_t count = 0;
  Spawn(cluster.simulator(), ScanOne(index, ctx, 0, 8000, nullptr, &count));
  cluster.simulator().Run();
  EXPECT_EQ(count, 6000u);

  // Rebuild, then scans are correct and cheaper.
  const uint64_t stale_round_trips = ctx.round_trips;
  (void)stale_round_trips;
  struct Rebuild {
    static Task<> Run(FineGrainedIndex& index, ClientContext& ctx) {
      (void)co_await index.RebuildHeads(ctx);
    }
  };
  Spawn(cluster.simulator(), Rebuild::Run(index, ctx));
  cluster.simulator().Run();

  ctx.round_trips.Reset();
  count = 0;
  Spawn(cluster.simulator(), ScanOne(index, ctx, 0, 8000, nullptr, &count));
  cluster.simulator().Run();
  EXPECT_EQ(count, 6000u);
}

// ---- Metrics registry parity ------------------------------------------------

// Every counter a context moves must read identically from the fabric's
// registry, per client via the {client} label and in aggregate across the
// family (docs/observability.md). This is the contract that lets RunResult
// be a pure window over the registry.
TEST_P(IndexDesignTest, RegistryMirrorsContextCounters) {
  TestRig setup(GetParam());
  ASSERT_TRUE(setup.index->BulkLoad(MakeData(4000)).ok());
  ClientContext a = setup.MakeClient(0, 1);
  ClientContext b = setup.MakeClient(1, 2);

  std::vector<Key> keys;
  for (Key k = 0; k < 400; ++k) keys.push_back(k * 2);
  std::vector<LookupResult> results_a, results_b;
  Spawn(setup.cluster.simulator(),
        LookupMany(*setup.index, a, keys, &results_a));
  Spawn(setup.cluster.simulator(),
        LookupMany(*setup.index, b, keys, &results_b));
  setup.cluster.simulator().Run();

  std::vector<KV> fresh;
  for (uint64_t i = 0; i < 200; ++i) fresh.push_back({i * 2 + 1, i + 1});
  uint64_t failures = 0;
  Spawn(setup.cluster.simulator(),
        InsertMany(*setup.index, a, std::move(fresh), &failures));
  setup.cluster.simulator().Run();
  ASSERT_EQ(failures, 0u);

  auto& registry = setup.cluster.fabric().metrics();
  const auto parity = [&](const char* family, const metrics::Counter& ca,
                          const metrics::Counter& cb) {
    EXPECT_EQ(registry.Value(family, "client", "0"), ca.value()) << family;
    EXPECT_EQ(registry.Value(family, "client", "1"), cb.value()) << family;
    EXPECT_EQ(registry.Value(family), ca.value() + cb.value()) << family;
  };
  parity("client.round_trips", a.round_trips, b.round_trips);
  parity("client.restarts", a.restarts, b.restarts);
  parity("client.lock_waits", a.lock_waits, b.lock_waits);
  parity("client.backoff_rounds", a.backoff_rounds, b.backoff_rounds);
  parity("client.lock_steals", a.lock_steals, b.lock_steals);
  parity("client.combined_reads", a.combined_reads, b.combined_reads);
  EXPECT_GT(registry.Value("client.round_trips"), 0u);

  // A Snapshot window over more work isolates exactly that work.
  const metrics::Snapshot begin = registry.Collect();
  const uint64_t trips_before = a.round_trips;
  std::vector<LookupResult> again;
  Spawn(setup.cluster.simulator(), LookupMany(*setup.index, a, keys, &again));
  setup.cluster.simulator().Run();
  const metrics::Delta window =
      metrics::Delta::Between(begin, registry.Collect());
  EXPECT_EQ(window.Value("client.round_trips", "client", "0"),
            a.round_trips - trips_before);
  EXPECT_EQ(window.Value("client.round_trips", "client", "1"), 0u);
}

// ---- Multi-op RPC batches (PointOp / RunBatch) ------------------------------

Task<> RunBatchOnce(DistributedIndex& index, ClientContext& ctx,
                    std::vector<PointOp> ops,
                    std::vector<PointOpResult>* results) {
  results->assign(ops.size(), PointOpResult{});
  co_await index.RunBatch(ctx, ops, results->data());
}

class BatchOpsTest : public ::testing::TestWithParam<Design> {};

// The coarse-grained designs exercise the coalesced kBatch RPC frame; the
// fine-grained design exercises the default sequential fallback. Results
// must be indistinguishable.
INSTANTIATE_TEST_SUITE_P(Designs, BatchOpsTest,
                         ::testing::Values(Design::kCoarseRange,
                                           Design::kCoarseHash, Design::kFine),
                         [](const ::testing::TestParamInfo<Design>& info) {
                           return DesignName(info.param);
                         });

TEST_P(BatchOpsTest, MixedBatchMatchesSequentialSemantics) {
  TestRig rig(GetParam());
  ASSERT_TRUE(rig.index->BulkLoad(MakeData(500)).ok());
  ClientContext ctx = rig.MakeClient(0);

  // Bulk data: keys 0,2,...,998 with value key/2 + 1. Odd keys are absent.
  const std::vector<PointOp> ops = {
      {PointOpKind::kLookup, 10, 0},    // hit: value 6
      {PointOpKind::kLookup, 11, 0},    // clean miss
      {PointOpKind::kInsert, 1001, 77},
      {PointOpKind::kUpdate, 20, 999},
      {PointOpKind::kUpdate, 21, 1},    // missing key
      {PointOpKind::kDelete, 30, 0},
      {PointOpKind::kDelete, 31, 0},    // missing key
      {PointOpKind::kLookup, 1001, 0},  // sees this batch's own insert
  };
  std::vector<PointOpResult> results;
  Spawn(rig.cluster.simulator(), RunBatchOnce(*rig.index, ctx, ops, &results));
  rig.cluster.simulator().Run();

  ASSERT_EQ(results.size(), 8u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[0].found);
  EXPECT_EQ(results[0].value, 6u);
  EXPECT_TRUE(results[1].status.ok());
  EXPECT_FALSE(results[1].found);
  EXPECT_TRUE(results[2].status.ok());
  EXPECT_TRUE(results[3].status.ok());
  EXPECT_EQ(results[4].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[5].status.ok());
  EXPECT_EQ(results[6].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[7].status.ok());
  // Same key, same partition, same frame: submission order is preserved.
  EXPECT_TRUE(results[7].found) << "batch lost its own earlier insert";
  EXPECT_EQ(results[7].value, 77u);

  // The batch's side effects equal the sequential ops'.
  std::vector<LookupResult> after;
  Spawn(rig.cluster.simulator(),
        LookupMany(*rig.index, ctx, {20, 30, 1001}, &after));
  rig.cluster.simulator().Run();
  ASSERT_EQ(after.size(), 3u);
  EXPECT_TRUE(after[0].found);
  EXPECT_EQ(after[0].value, 999u);
  EXPECT_FALSE(after[1].found);
  EXPECT_TRUE(after[2].found);
  EXPECT_EQ(after[2].value, 77u);

  EXPECT_EQ(rig.index->SupportsBatchedPointOps(),
            GetParam() != Design::kFine);
}

}  // namespace
}  // namespace namtree::index
