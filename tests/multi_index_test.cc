// Multi-index deployments: several indexes (RPC-based and one-sided) share
// one NAM cluster — memory servers route RPCs by service id, catalog slots
// are allocated per index, and the regions hold all structures side by
// side. This is the composability a real database needs (one table has
// many secondary indexes).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "index/coarse_grained.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "index/inspector.h"
#include "nam/cluster.h"
#include "ycsb/workload.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

rdma::FabricConfig Config() {
  rdma::FabricConfig config;
  config.num_memory_servers = 4;
  return config;
}

IndexConfig SmallPages() {
  IndexConfig config;
  config.page_size = 256;
  config.head_node_interval = 4;
  return config;
}

TEST(MultiIndexTest, TwoRpcIndexesShareTheWorkerPool) {
  Cluster cluster(Config(), 64 << 20);
  CoarseGrainedIndex primary(cluster, SmallPages());
  HybridIndex secondary(cluster, SmallPages());

  // "Primary": key -> row id. "Secondary": a different key space (as if
  // indexing another column) -> row id.
  std::vector<KV> primary_data;
  std::vector<KV> secondary_data;
  for (uint64_t i = 0; i < 5000; ++i) {
    primary_data.push_back({i * 2, i});
    secondary_data.push_back({1'000'000 + i * 3, i});
  }
  ASSERT_TRUE(primary.BulkLoad(primary_data).ok());
  ASSERT_TRUE(secondary.BulkLoad(secondary_data).ok());

  cluster.fabric().SetNumClients(4);
  struct Driver {
    static Task<> Go(DistributedIndex& a, DistributedIndex& b,
                     ClientContext& ctx, uint64_t seed) {
      Rng rng(seed);
      for (int i = 0; i < 300; ++i) {
        const uint64_t row = rng.NextBelow(5000);
        const LookupResult pa = co_await a.Lookup(ctx, row * 2);
        EXPECT_TRUE(pa.found);
        EXPECT_EQ(pa.value, row);
        const LookupResult pb =
            co_await b.Lookup(ctx, 1'000'000 + row * 3);
        EXPECT_TRUE(pb.found);
        EXPECT_EQ(pb.value, row);
        // Cross-index writes interleave freely.
        EXPECT_TRUE((co_await a.Insert(ctx, row * 2 + 1, row)).ok());
        EXPECT_TRUE(
            (co_await b.Insert(ctx, 1'000'000 + row * 3 + 1, row)).ok());
      }
    }
  };
  std::vector<std::unique_ptr<ClientContext>> ctxs;
  for (uint32_t c = 0; c < 4; ++c) {
    ctxs.push_back(std::make_unique<ClientContext>(c, cluster.fabric(), 256,
                                                   c + 1));
    Spawn(cluster.simulator(),
          Driver::Go(primary, secondary, *ctxs[c], c + 1));
  }
  cluster.simulator().Run();

  // Both structures stay sound, and neither index tripped the fabric's
  // verb-protocol auditor while interleaving on shared memory servers.
  const auto ra = IndexInspector::Inspect(cluster.fabric(), primary);
  EXPECT_TRUE(ra.ok()) << ra.ToString();
  const auto rb = IndexInspector::Inspect(cluster.fabric(), secondary);
  EXPECT_TRUE(rb.ok()) << rb.ToString();
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
}

TEST(MultiIndexTest, OneSidedIndexesGetDistinctCatalogSlots) {
  Cluster cluster(Config(), 64 << 20);
  FineGrainedIndex a(cluster, SmallPages());
  FineGrainedIndex b(cluster, SmallPages());

  std::vector<KV> data_a;
  std::vector<KV> data_b;
  for (uint64_t i = 0; i < 3000; ++i) {
    data_a.push_back({i * 2, i});
    data_b.push_back({i * 5, 100000 + i});
  }
  ASSERT_TRUE(a.BulkLoad(data_a).ok());
  ASSERT_TRUE(b.BulkLoad(data_b).ok());
  EXPECT_NE(a.root().raw(), b.root().raw());

  // Force root growth in both (splits all the way up) and verify their
  // catalog updates never clobber each other.
  ClientContext ctx(0, cluster.fabric(), 256, 1);
  struct Driver {
    static Task<> Go(FineGrainedIndex& a, FineGrainedIndex& b,
                     ClientContext& ctx) {
      for (uint64_t i = 0; i < 3000; ++i) {
        EXPECT_TRUE((co_await a.Insert(ctx, i * 2 + 1, i)).ok());
        EXPECT_TRUE((co_await b.Insert(ctx, i * 5 + 1, i)).ok());
      }
      // Both still fully queryable.
      EXPECT_EQ(co_await a.Scan(ctx, 0, btree::kInfinityKey, nullptr),
                6000u);
      EXPECT_EQ(co_await b.Scan(ctx, 0, btree::kInfinityKey, nullptr),
                6000u);
      const LookupResult ra = co_await a.Lookup(ctx, 99);
      EXPECT_TRUE(ra.found);
      const LookupResult rb = co_await b.Lookup(ctx, 96);
      EXPECT_TRUE(rb.found);
    }
  };
  Spawn(cluster.simulator(), Driver::Go(a, b, ctx));
  cluster.simulator().Run();

  const auto report_a = IndexInspector::Inspect(cluster.fabric(), a);
  EXPECT_TRUE(report_a.ok()) << report_a.ToString();
  const auto report_b = IndexInspector::Inspect(cluster.fabric(), b);
  EXPECT_TRUE(report_b.ok()) << report_b.ToString();
}

TEST(MultiIndexTest, UnknownServiceGetsUnsupported) {
  Cluster cluster(Config(), 64 << 20);
  CoarseGrainedIndex index(cluster, SmallPages());
  ASSERT_TRUE(index.BulkLoad({}).ok());
  cluster.fabric().SetNumClients(1);

  struct Driver {
    static Task<> Go(Cluster& cluster, uint16_t* status) {
      rdma::RpcRequest req;
      req.service = 999;  // never registered
      req.op = 1;
      rdma::RpcResponse resp =
          co_await cluster.fabric().Call(0, 0, std::move(req));
      *status = resp.status;
    }
  };
  uint16_t status = 0;
  Spawn(cluster.simulator(), Driver::Go(cluster, &status));
  cluster.simulator().Run();
  EXPECT_EQ(status, static_cast<uint16_t>(StatusCode::kUnsupported));
}

}  // namespace
}  // namespace namtree::index
