// Tests for the structural invariant inspector, and inspector-backed
// stress validation: after heavy concurrent mutation, every design's
// physical structure must still satisfy all B-link invariants.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "index/inspector.h"
#include "nam/cluster.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

rdma::FabricConfig Config() {
  rdma::FabricConfig config;
  config.num_memory_servers = 4;
  return config;
}

std::vector<KV> MakeData(uint64_t n) {
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * 2, i});
  return data;
}

IndexConfig SmallPages() {
  IndexConfig config;
  config.page_size = 256;
  config.head_node_interval = 4;
  return config;
}

TEST(InspectorTest, FreshFineGrainedIndexIsSound) {
  Cluster cluster(Config(), 64 << 20);
  FineGrainedIndex index(cluster, SmallPages());
  ASSERT_TRUE(index.BulkLoad(MakeData(20000)).ok());
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.live_entries, 20000u);
  EXPECT_EQ(report.tombstones, 0u);
  EXPECT_GT(report.head_pages, 0u);
  EXPECT_GE(report.height, 3u);
}

TEST(InspectorTest, FreshCoarseGrainedIndexIsSound) {
  Cluster cluster(Config(), 64 << 20);
  IndexConfig config = SmallPages();
  config.partition_weights = {0.80, 0.12, 0.05, 0.03};
  CoarseGrainedIndex index(cluster, config);
  ASSERT_TRUE(index.BulkLoad(MakeData(20000)).ok());
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.live_entries, 20000u);
}

TEST(InspectorTest, FreshHybridIndexIsSound) {
  Cluster cluster(Config(), 64 << 20);
  HybridIndex index(cluster, SmallPages());
  ASSERT_TRUE(index.BulkLoad(MakeData(20000)).ok());
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.live_entries, 20000u);
}

TEST(InspectorTest, FreshCoarseOneSidedIndexIsSound) {
  Cluster cluster(Config(), 64 << 20);
  CoarseOneSidedIndex index(cluster, SmallPages());
  ASSERT_TRUE(index.BulkLoad(MakeData(20000)).ok());
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.live_entries, 20000u);
}

TEST(InspectorTest, CoarseOneSidedSurvivesMixedWorkload) {
  Cluster cluster(Config(), 64 << 20);
  CoarseOneSidedIndex index(cluster, SmallPages());
  const uint64_t keys = 5000;
  ASSERT_TRUE(index.BulkLoad(MakeData(keys)).ok());
  ycsb::RunConfig run;
  run.num_clients = 24;
  run.warmup = 0;
  run.duration = 30 * kMillisecond;
  run.gc_interval = 5 * kMillisecond;
  ycsb::WorkloadMix mix;
  mix.point = 0.30;
  mix.range = 0.10;
  mix.insert = 0.35;
  mix.update = 0.10;
  mix.remove = 0.15;
  mix.range_selectivity = 0.01;
  run.mix = mix;
  const auto result = ycsb::RunWorkload(cluster, index, keys, run);
  ASSERT_GT(result.ops(), 1000u);
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(InspectorTest, DetectsCorruptedFence) {
  Cluster cluster(Config(), 64 << 20);
  FineGrainedIndex index(cluster, SmallPages());
  ASSERT_TRUE(index.BulkLoad(MakeData(1000)).ok());
  // Corrupt a leaf: smash the high fence of the first leaf below its keys.
  const rdma::RemotePtr first = index.first_leaf();
  btree::PageView page(
      cluster.fabric().region(first.server_id())->at(first.offset()),
      SmallPages().page_size);
  page.header().high_key = 0;
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_FALSE(report.ok());
}

TEST(InspectorTest, DetectsDanglingLock) {
  Cluster cluster(Config(), 64 << 20);
  FineGrainedIndex index(cluster, SmallPages());
  ASSERT_TRUE(index.BulkLoad(MakeData(1000)).ok());
  const rdma::RemotePtr first = index.first_leaf();
  btree::PageView page(
      cluster.fabric().region(first.server_id())->at(first.offset()),
      SmallPages().page_size);
  page.header().version_lock |= 1;  // leaked lock
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_FALSE(report.ok());
}

TEST(InspectorTest, DetectsOutOfOrderEntries) {
  Cluster cluster(Config(), 64 << 20);
  FineGrainedIndex index(cluster, SmallPages());
  ASSERT_TRUE(index.BulkLoad(MakeData(1000)).ok());
  const rdma::RemotePtr first = index.first_leaf();
  btree::PageView page(
      cluster.fabric().region(first.server_id())->at(first.offset()),
      SmallPages().page_size);
  ASSERT_GE(page.count(), 2u);
  std::swap(page.leaf_entries()[0], page.leaf_entries()[1]);
  page.leaf_entries()[0].key = 1'000'000;  // way out of order
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_FALSE(report.ok());
}

// ---- Inspector-backed stress: run a heavy mixed workload, then validate
// the physical structure of every design. -----------------------------------

class InspectorStressTest
    : public ::testing::TestWithParam<std::pair<int, uint64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    DesignsAndSeeds, InspectorStressTest,
    ::testing::Values(std::make_pair(0, 1u), std::make_pair(1, 2u),
                      std::make_pair(2, 3u), std::make_pair(0, 4u),
                      std::make_pair(1, 5u), std::make_pair(2, 6u)));

TEST_P(InspectorStressTest, StructureSurvivesMixedWorkload) {
  const auto [design, seed] = GetParam();
  Cluster cluster(Config(), 64 << 20);
  IndexConfig config = SmallPages();
  std::unique_ptr<DistributedIndex> index;
  CoarseGrainedIndex* cg = nullptr;
  FineGrainedIndex* fg = nullptr;
  HybridIndex* hy = nullptr;
  switch (design) {
    case 0:
      cg = new CoarseGrainedIndex(cluster, config);
      index.reset(cg);
      break;
    case 1:
      fg = new FineGrainedIndex(cluster, config);
      index.reset(fg);
      break;
    default:
      hy = new HybridIndex(cluster, config);
      index.reset(hy);
      break;
  }
  const uint64_t keys = 5000;
  ASSERT_TRUE(index->BulkLoad(MakeData(keys)).ok());

  ycsb::RunConfig run;
  run.num_clients = 24;
  run.warmup = 0;
  run.duration = 30 * kMillisecond;
  run.seed = seed;
  run.gc_interval = 5 * kMillisecond;
  ycsb::WorkloadMix mix;
  mix.point = 0.30;
  mix.range = 0.10;
  mix.insert = 0.35;
  mix.update = 0.10;
  mix.remove = 0.15;
  mix.range_selectivity = 0.01;
  run.mix = mix;
  const auto result = ycsb::RunWorkload(cluster, *index, keys, run);
  ASSERT_GT(result.ops(), 1000u);

  IndexInspector::Report report;
  if (cg != nullptr) {
    report = IndexInspector::Inspect(cluster.fabric(), *cg);
  } else if (fg != nullptr) {
    report = IndexInspector::Inspect(cluster.fabric(), *fg);
  } else {
    report = IndexInspector::Inspect(cluster.fabric(), *hy);
  }
  EXPECT_TRUE(report.ok()) << index->name() << " seed " << seed << ": "
                           << report.ToString();
  EXPECT_GT(report.live_entries, 0u);
}

}  // namespace
}  // namespace namtree::index
