// Tests for the common utilities: Status/Result, RNG + Zipf distribution,
// histogram quantiles, unit formatting, and the bench argument parser.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <vector>

#include "common/arg_parser.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "common/units.h"

namespace namtree {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorsCarryCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnsupported); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.value_or(9), 7);

  Result<int> err(Status::NotFound());
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.value_or(9), 9);
  EXPECT_TRUE(err.status().IsNotFound());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(124);
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextBelowIsInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<uint64_t> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.NextBelow(10);
    ASSERT_LT(v, 10u);
    counts[v]++;
  }
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(ZipfTest, RankZeroDominates) {
  ZipfGenerator zipf(1000, 0.99);
  Rng rng(11);
  std::map<uint64_t, uint64_t> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[zipf.Next(rng)]++;
  // With theta=0.99 and n=1000, rank 0 draws 1/zeta(1000, 0.99) ~ 13% of
  // all requests, and frequencies are non-increasing at the head.
  EXPECT_NEAR(static_cast<double>(counts[0]), 0.13 * n, 0.02 * n);
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[5], counts[50]);
}

TEST(ZipfTest, AllRanksWithinDomain) {
  ZipfGenerator zipf(50, 0.5);
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 50u);
  }
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v * 100);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_NEAR(h.mean(), 5050 * 100 / 100.0, 1.0);
  // p50 within a bucket of the true median.
  EXPECT_NEAR(h.Quantile(0.5), 5000, 700);
  EXPECT_NEAR(h.Quantile(0.99), 9900, 1300);
  EXPECT_GE(h.Quantile(1.0), h.Quantile(0.5));
}

TEST(HistogramTest, MergeAndReset) {
  Histogram a;
  Histogram b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleValueQuantilesCollapse) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Add(42);
  EXPECT_NEAR(h.Quantile(0.01), 42, 1);
  EXPECT_NEAR(h.Quantile(0.99), 42, 1);
}

TEST(UnitsTest, Formatting) {
  EXPECT_EQ(FormatCount(1234567), "1.23M");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(2.5e9), "2.50B");
  EXPECT_EQ(FormatDuration(2500), "2.50us");
  EXPECT_EQ(FormatDuration(3 * kSecond), "3.000s");
  EXPECT_EQ(FormatBandwidth(6.8e9), "6.80 GB/s");
}

TEST(ArgParserTest, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--keys=5000", "--skew", "--rate=1.5",
                        "--name=test"};
  ArgParser args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("keys", 0), 5000);
  EXPECT_TRUE(args.GetBool("skew", false));
  EXPECT_FALSE(args.GetBool("other", false));
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0), 1.5);
  EXPECT_EQ(args.GetString("name", ""), "test");
  EXPECT_EQ(args.GetInt("missing", 7), 7);
}

TEST(ArgParserTest, ParsesSpaceSeparatedValues) {
  const char* argv[] = {"prog", "--json", "out.json", "--skew", "--keys", "7"};
  ArgParser args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.GetString("json", ""), "out.json");
  EXPECT_TRUE(args.GetBool("skew", false));  // followed by a flag: boolean
  EXPECT_EQ(args.GetInt("keys", 0), 7);      // last pair still consumed
}

TEST(ArgParserTest, EnvironmentFallback) {
  ::setenv("NAMTREE_TEST_KNOB", "99", 1);
  const char* argv[] = {"prog"};
  ArgParser args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("test-knob", 0), 99);
  ::unsetenv("NAMTREE_TEST_KNOB");
}

TEST(ArgParserTest, CommandLineBeatsEnvironment) {
  ::setenv("NAMTREE_KEYS", "1", 1);
  const char* argv[] = {"prog", "--keys=2"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("keys", 0), 2);
  ::unsetenv("NAMTREE_KEYS");
}

}  // namespace
}  // namespace namtree
