// Tests for the coroutine synchronization primitives (Semaphore, Barrier,
// Gate) and for verb-ordering guarantees of the fabric that the index
// protocols rely on (WRITE before FAA visibility, CAS serialization).

#include <gtest/gtest.h>

#include <vector>

#include "nam/cluster.h"
#include "rdma/fabric.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace namtree::sim {
namespace {

Task<> UseSemaphore(Simulator& s, Semaphore& sem, SimTime hold,
                    std::vector<SimTime>* done) {
  co_await sem.Acquire();
  co_await Delay(s, hold);
  sem.Release();
  done->push_back(s.now());
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulator s;
  Semaphore sem(s, 3);
  std::vector<SimTime> done;
  for (int i = 0; i < 9; ++i) Spawn(s, UseSemaphore(s, sem, 50, &done));
  s.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{50, 50, 50, 100, 100, 100, 150, 150,
                                        150}));
  EXPECT_EQ(sem.available(), 3u);
}

TEST(SemaphoreTest, TryAcquire) {
  Simulator s;
  Semaphore sem(s, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

Task<> AcquireTagged(Simulator& s, Semaphore& sem, int id, SimTime arrive,
                     SimTime hold, std::vector<int>* order) {
  co_await Delay(s, arrive);
  co_await sem.Acquire();
  order->push_back(id);
  co_await Delay(s, hold);
  sem.Release();
}

TEST(SemaphoreTest, WakeupOrderIsFifo) {
  Simulator s;
  Semaphore sem(s, 1);
  std::vector<int> order;
  // Stagger arrivals so the wait queue builds up in a known order while
  // the first holder sleeps; each release must hand the unit to the
  // longest-waiting coroutine, not the most recent or an arbitrary one.
  Spawn(s, AcquireTagged(s, sem, 0, 0, 100, &order));
  Spawn(s, AcquireTagged(s, sem, 1, 5, 10, &order));
  Spawn(s, AcquireTagged(s, sem, 2, 4, 10, &order));
  Spawn(s, AcquireTagged(s, sem, 3, 3, 10, &order));
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 3, 2, 1}));
  EXPECT_EQ(sem.available(), 1u);
  EXPECT_EQ(sem.waiters(), 0u);
}

Task<> TryAcquireProbe(Simulator& s, Semaphore& sem, SimTime at,
                       std::vector<bool>* results) {
  co_await Delay(s, at);
  const bool got = sem.TryAcquire();
  results->push_back(got);
  if (got) sem.Release();
}

TEST(SemaphoreTest, TryAcquireCannotBargePastWaiters) {
  Simulator s;
  Semaphore sem(s, 1);
  std::vector<int> order;
  std::vector<bool> probes;
  Spawn(s, AcquireTagged(s, sem, 0, 0, 100, &order));   // holds [0, 100)
  Spawn(s, AcquireTagged(s, sem, 1, 10, 100, &order));  // queued at 10
  // While the unit is held: TryAcquire must fail.
  Spawn(s, TryAcquireProbe(s, sem, 50, &probes));
  // Just after the release at t=100 the unit transfers *directly* to the
  // queued waiter, so a TryAcquire at t=150 must still fail (no barging).
  Spawn(s, TryAcquireProbe(s, sem, 150, &probes));
  // After the last holder releases with an empty queue, it succeeds.
  Spawn(s, TryAcquireProbe(s, sem, 250, &probes));
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(probes, (std::vector<bool>{false, false, true}));
}

Task<> MeetAtBarrier(Simulator& s, Barrier& barrier, SimTime arrive_at,
                     std::vector<SimTime>* released) {
  co_await Delay(s, arrive_at);
  co_await barrier.Arrive();
  released->push_back(s.now());
}

TEST(BarrierTest, AllPartiesReleaseTogether) {
  Simulator s;
  Barrier barrier(s, 3);
  std::vector<SimTime> released;
  Spawn(s, MeetAtBarrier(s, barrier, 10, &released));
  Spawn(s, MeetAtBarrier(s, barrier, 70, &released));
  Spawn(s, MeetAtBarrier(s, barrier, 40, &released));
  s.Run();
  ASSERT_EQ(released.size(), 3u);
  for (SimTime t : released) EXPECT_EQ(t, 70);
  EXPECT_EQ(barrier.generation(), 1u);
}

Task<> BarrierRounds(Simulator& s, Barrier& barrier, int rounds,
                     SimTime step, std::vector<SimTime>* stamps) {
  for (int r = 0; r < rounds; ++r) {
    co_await Delay(s, step);
    co_await barrier.Arrive();
    stamps->push_back(s.now());
  }
}

TEST(BarrierTest, ReusableAcrossGenerations) {
  Simulator s;
  Barrier barrier(s, 2);
  std::vector<SimTime> a;
  std::vector<SimTime> b;
  Spawn(s, BarrierRounds(s, barrier, 3, 10, &a));
  Spawn(s, BarrierRounds(s, barrier, 3, 25, &b));
  s.Run();
  ASSERT_EQ(a.size(), 3u);
  // Both meet at the slower party's schedule: 25, 50, 75.
  EXPECT_EQ(a, (std::vector<SimTime>{25, 50, 75}));
  EXPECT_EQ(b, (std::vector<SimTime>{25, 50, 75}));
  EXPECT_EQ(barrier.generation(), 3u);
}

Task<> WaitGate(Simulator& s, Gate& gate, std::vector<SimTime>* stamps) {
  co_await gate.Wait();
  stamps->push_back(s.now());
}

Task<> OperateGate(Simulator& s, Gate& gate) {
  co_await Delay(s, 100);
  gate.Open();
  co_await Delay(s, 10);
  gate.Close();
}

TEST(GateTest, BlocksUntilOpenAndCanReclose) {
  Simulator s;
  Gate gate(s);
  std::vector<SimTime> stamps;
  Spawn(s, WaitGate(s, gate, &stamps));
  Spawn(s, OperateGate(s, gate));
  s.Run();
  ASSERT_EQ(stamps.size(), 1u);
  EXPECT_EQ(stamps[0], 100);
  EXPECT_FALSE(gate.is_open());
  // A new waiter blocks again (queue drains only on the next Open).
  Spawn(s, WaitGate(s, gate, &stamps));
  s.Run();
  EXPECT_EQ(stamps.size(), 1u);
  gate.Open();
  s.Run();
  EXPECT_EQ(stamps.size(), 2u);
}

}  // namespace
}  // namespace namtree::sim

namespace namtree::rdma {
namespace {

using nam::Cluster;
using sim::Spawn;
using sim::Task;

// The FG unlock protocol depends on same-target ordering: the page WRITE
// must be visible before the FAA clears the lock bit.
Task<> WriteThenUnlock(Fabric& fabric, RemotePtr page, uint64_t payload) {
  std::vector<uint8_t> image(64, 0);
  const uint64_t locked = 1;  // version 0 locked
  std::memcpy(image.data(), &locked, 8);
  std::memcpy(image.data() + 8, &payload, 8);
  co_await fabric.Write(0, page, image.data(), 64);
  co_await fabric.FetchAndAdd(0, page, 1);
}

Task<> SpinReadPayload(Fabric& fabric, RemotePtr page, uint64_t* payload) {
  std::vector<uint8_t> image(64, 0);
  for (;;) {
    co_await fabric.Read(1, page, image.data(), 64);
    uint64_t word;
    std::memcpy(&word, image.data(), 8);
    if ((word & 1) == 0 && word > 0) {  // unlocked and version bumped
      std::memcpy(payload, image.data() + 8, 8);
      co_return;
    }
    co_await sim::Delay(fabric.simulator(), 200);
  }
}

TEST(FabricOrderingTest, WriteVisibleBeforeUnlockFaa) {
  FabricConfig config;
  config.num_memory_servers = 1;
  Cluster cluster(config, 1 << 20);
  cluster.fabric().SetNumClients(2);
  RemotePtr page = cluster.memory_server(0).region().AllocateLocal(64);
  // Pre-lock the page so the reader must observe the full unlock protocol.
  cluster.memory_server(0).region().WriteU64(page.offset(), 1);

  uint64_t payload = 0;
  Spawn(cluster.simulator(),
        SpinReadPayload(cluster.fabric(), page, &payload));
  Spawn(cluster.simulator(),
        WriteThenUnlock(cluster.fabric(), page, 0xFEEDF00Dull));
  cluster.simulator().Run();
  EXPECT_EQ(payload, 0xFEEDF00Dull)
      << "reader observed the unlock before the page content";
}

Task<> RacingCas(Fabric& fabric, uint32_t client, RemotePtr word,
                 uint64_t desired, uint64_t* wins) {
  const uint64_t old =
      (co_await fabric.CompareAndSwap(client, word, 0, desired)).value;
  if (old == 0) (*wins)++;
}

TEST(FabricOrderingTest, ManyRacingCasExactlyOneWinner) {
  FabricConfig config;
  config.num_memory_servers = 1;
  Cluster cluster(config, 1 << 20);
  cluster.fabric().SetNumClients(16);
  RemotePtr word = cluster.memory_server(0).region().AllocateLocal(8);
  uint64_t wins = 0;
  for (uint32_t c = 0; c < 16; ++c) {
    Spawn(cluster.simulator(),
          RacingCas(cluster.fabric(), c, word, 100 + c, &wins));
  }
  cluster.simulator().Run();
  EXPECT_EQ(wins, 1u);
  const uint64_t final = cluster.memory_server(0).region().ReadU64(
      word.offset());
  EXPECT_GE(final, 100u);
  EXPECT_LT(final, 116u);
}

}  // namespace
}  // namespace namtree::rdma
