// Tests for the §7 shared-nothing adaptation on real threads: routing,
// mailbox RPC vs locality fast path, cross-partition scans, and correctness
// under true hardware concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "btree/shared_nothing.h"
#include "common/random.h"

namespace namtree::btree {
namespace {

std::vector<KV> MakeData(uint64_t n) {
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * 2, i});
  return data;
}

TEST(SharedNothingTest, RoutingCoversTheKeySpace) {
  SharedNothingCluster cluster(4, 2, 256);
  ASSERT_TRUE(cluster.BulkLoad(MakeData(10000)).ok());
  // Partition ids ascend with keys and every node owns some range.
  std::vector<uint32_t> hits(4, 0);
  uint32_t previous = 0;
  for (Key k = 0; k < 20000; k += 100) {
    const uint32_t node = cluster.NodeFor(k);
    ASSERT_LT(node, 4u);
    EXPECT_GE(node, previous);
    previous = node;
    hits[node]++;
  }
  for (uint32_t h : hits) EXPECT_GT(h, 20u);
}

TEST(SharedNothingTest, BasicOperationsThroughTheMailbox) {
  SharedNothingCluster cluster(4, 2, 256);
  ASSERT_TRUE(cluster.BulkLoad(MakeData(5000)).ok());

  auto hit = cluster.Lookup(4000);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value(), 2000u);
  EXPECT_FALSE(cluster.Lookup(4001).ok());

  EXPECT_TRUE(cluster.Insert(4001, 99).ok());
  EXPECT_EQ(cluster.Lookup(4001).value_or(0), 99u);
  EXPECT_TRUE(cluster.Update(4001, 100).ok());
  EXPECT_EQ(cluster.Lookup(4001).value_or(0), 100u);
  EXPECT_TRUE(cluster.Delete(4001).ok());
  EXPECT_FALSE(cluster.Lookup(4001).ok());
  EXPECT_EQ(cluster.GarbageCollect(), 1u);
}

TEST(SharedNothingTest, CrossPartitionScan) {
  SharedNothingCluster cluster(4, 2, 256);
  const auto data = MakeData(8000);
  ASSERT_TRUE(cluster.BulkLoad(data).ok());
  std::vector<KV> out;
  // A range spanning all four partitions.
  const uint64_t n = cluster.Scan(1000, 15000, &out);
  uint64_t expected = 0;
  for (const KV& kv : data) {
    if (kv.key >= 1000 && kv.key < 15000) expected++;
  }
  EXPECT_EQ(n, expected);
  ASSERT_EQ(out.size(), expected);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                             [](const KV& a, const KV& b) {
                               return a.key < b.key;
                             }));
}

TEST(SharedNothingTest, LocalFastPathBypassesTheMailbox) {
  SharedNothingCluster cluster(2, 1, 256);
  ASSERT_TRUE(cluster.BulkLoad(MakeData(2000)).ok());
  const uint64_t remote_before = cluster.remote_requests();

  // Keys owned by node 0, issued from "node 0": no mailbox traffic.
  for (Key k = 0; k < 100; k += 2) {
    EXPECT_TRUE(cluster.Lookup(k, /*home_node=*/0).ok());
  }
  EXPECT_EQ(cluster.remote_requests(), remote_before);
  EXPECT_GE(cluster.local_requests(), 50u);

  // Same keys from "node 1": all go through node 0's mailbox.
  for (Key k = 0; k < 100; k += 2) {
    EXPECT_TRUE(cluster.Lookup(k, /*home_node=*/1).ok());
  }
  EXPECT_EQ(cluster.remote_requests(), remote_before + 50);
}

TEST(SharedNothingTest, ConcurrentClientsOnRealThreads) {
  SharedNothingCluster cluster(4, 2, 256);
  ASSERT_TRUE(cluster.BulkLoad(MakeData(20000)).ok());

  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&cluster, &errors, t] {
      Rng rng(t + 1);
      const uint32_t home = t % 4;
      for (int i = 0; i < 2000; ++i) {
        const double a = rng.NextDouble();
        const Key k = rng.NextBelow(40000);
        if (a < 0.4) {
          if (!cluster.Insert(k, k, home).ok()) errors.fetch_add(1);
        } else if (a < 0.6) {
          (void)cluster.Delete(k, home);
        } else if (a < 0.9) {
          (void)cluster.Lookup(k, home);
        } else {
          std::vector<KV> out;
          cluster.Scan(k, k + 200, &out, home);
          for (size_t j = 1; j < out.size(); ++j) {
            if (out[j - 1].key > out[j].key) errors.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(errors.load(), 0u);

  // Full scan is sorted and GC-able afterwards.
  std::vector<KV> out;
  const uint64_t total = cluster.Scan(0, kInfinityKey, &out);
  EXPECT_EQ(total, out.size());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                             [](const KV& a, const KV& b) {
                               return a.key < b.key;
                             }));
  cluster.GarbageCollect();
}

}  // namespace
}  // namespace namtree::btree
