// Tests for the happens-before race detector (ViolationKind::kRemoteRace):
// injected write-write, read-write, and lock-elided races — driven through
// raw fabric verbs, bypassing the RemoteOps protocol helpers — must each be
// flagged, while HB edges (lock hand-off, version validation, program
// order, chained verbs) must keep the sanctioned protocol silent. Also
// covers the violation-log dedup/cap and the verb replay trace.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "btree/types.h"
#include "nam/cluster.h"
#include "rdma/audit.h"
#include "rdma/fabric.h"

namespace namtree::rdma {
namespace {

using nam::Cluster;
using sim::Spawn;
using sim::Task;

constexpr uint32_t kPage = 256;

struct Rig {
  Rig() : cluster(Config(), 1 << 20) {
    cluster.fabric().SetNumClients(4);
    page = cluster.memory_server(0).region().AllocateLocal(kPage);
  }

  static FabricConfig Config() {
    FabricConfig config;
    config.num_memory_servers = 1;
    return config;
  }

  VerbAuditor* auditor() { return cluster.fabric().auditor(); }
  Fabric& fabric() { return cluster.fabric(); }

  void Run() { cluster.simulator().Run(); }

  /// One full clean protocol cycle as `client`: CAS-lock the version word,
  /// WRITE back the locked image, FAA(+1) to release. The first cycle
  /// teaches the auditor the word and (via the full-page write) its page
  /// extent.
  Task<> CleanCycle(uint32_t client, uint64_t payload) {
    const uint64_t version =
        (co_await fabric().CompareAndSwap(client, page, expected_version_,
                                          expected_version_ | 1))
            .value;
    EXPECT_EQ(version, expected_version_) << "unexpected lock contention";
    std::vector<uint8_t> image(kPage, 0);
    const uint64_t locked = expected_version_ | 1;
    std::memcpy(image.data(), &locked, 8);
    std::memcpy(image.data() + 8, &payload, 8);
    co_await fabric().Write(client, page, image.data(), kPage);
    co_await fabric().FetchAndAdd(client, page, 1);
    expected_version_ += 2;
  }

  /// Full-page WRITE with no lock: the word value keeps the current
  /// version, so the missing lock (and any HB race) is the only fault.
  Task<> UnlockedWrite(uint32_t client, uint64_t payload) {
    std::vector<uint8_t> image(kPage, 0);
    std::memcpy(image.data(), &expected_version_, 8);
    std::memcpy(image.data() + 8, &payload, 8);
    co_await fabric().Write(client, page, image.data(), kPage);
  }

  /// Full-page READ covering the version word: a validated read.
  Task<> ValidatedRead(uint32_t client) {
    std::vector<uint8_t> image(kPage, 0);
    co_await fabric().Read(client, page, image.data(), kPage);
  }

  /// 8-byte READ into the page body, skipping the version word: the
  /// lock-elided access pattern the detector exists to catch.
  Task<> ElidedRead(uint32_t client, uint64_t offset) {
    uint64_t value = 0;
    co_await fabric().Read(client, page.Plus(offset), &value, 8);
  }

  Cluster cluster;
  RemotePtr page;
  uint64_t expected_version_ = 0;
};

#define REQUIRE_AUDITOR(rig)                                         \
  if ((rig).auditor() == nullptr) {                                  \
    GTEST_SKIP() << "built with -DNAMTREE_AUDIT=OFF";                \
  }

size_t RaceCount(const VerbAuditor& auditor) {
  return auditor.CountOfKind(ViolationKind::kRemoteRace);
}

/// The first recorded kRemoteRace, or nullptr.
const Violation* FirstRace(const VerbAuditor& auditor) {
  for (const Violation& v : auditor.violations()) {
    if (v.kind == ViolationKind::kRemoteRace) return &v;
  }
  return nullptr;
}

TEST(RaceDetectorTest, UnsyncedWriteWriteRaceIsFlagged) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.Run();
  ASSERT_EQ(rig.auditor()->violation_count(), 0u);

  // Two different clients publish page images with no lock and no
  // synchronization between them: each write races its predecessor even
  // though they land at distinct virtual times — the detector reasons in
  // happens-before, not wall-clock order.
  Spawn(rig.cluster.simulator(), rig.UnlockedWrite(1, 0xB1));
  rig.Run();
  Spawn(rig.cluster.simulator(), rig.UnlockedWrite(2, 0xB2));
  rig.Run();

  EXPECT_EQ(rig.auditor()->CountOfKind(ViolationKind::kWriteWithoutLock), 2u);
  EXPECT_EQ(RaceCount(*rig.auditor()), 2u);
  // Dedup folds repeats on the same word: two distinct records total, and
  // the discipline verdict stays first in the log.
  EXPECT_EQ(rig.auditor()->violation_count(), 2u);
  EXPECT_EQ(rig.auditor()->violations()[0].kind,
            ViolationKind::kWriteWithoutLock);
  const Violation* race = FirstRace(*rig.auditor());
  ASSERT_NE(race, nullptr);
  EXPECT_EQ(race->occurrences, 2u);
  // The race report carries both verbs' records.
  EXPECT_NE(race->detail.find("WRITE"), std::string::npos) << race->detail;
  EXPECT_NE(race->detail.find("vs"), std::string::npos) << race->detail;
}

TEST(RaceDetectorTest, ValidatedReaderVsUnlockedWriterRaces) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  // Client 1 owns the page history, so its later rogue write is ordered
  // (program order) after every prior write — the only unordered pair left
  // is writer-vs-reader.
  Spawn(rig.cluster.simulator(), rig.CleanCycle(1, 0xAA));
  rig.Run();
  Spawn(rig.cluster.simulator(), rig.ValidatedRead(2));
  rig.Run();
  ASSERT_EQ(rig.auditor()->violation_count(), 0u);

  Spawn(rig.cluster.simulator(), rig.UnlockedWrite(1, 0xBB));
  rig.Run();

  EXPECT_EQ(rig.auditor()->CountOfKind(ViolationKind::kWriteWithoutLock), 1u);
  EXPECT_EQ(RaceCount(*rig.auditor()), 1u);
  const Violation* race = FirstRace(*rig.auditor());
  ASSERT_NE(race, nullptr);
  // The racing pair is client 2's validated read vs client 1's write: an
  // unlocked writer is exactly what version validation cannot defend
  // against (the reader already validated and moved on).
  EXPECT_NE(race->detail.find("READ client=2"), std::string::npos)
      << race->detail;
  EXPECT_EQ(race->client, 1u);
}

TEST(RaceDetectorTest, LockElidedReadIsRacedByDisciplinedWriter) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.Run();

  // Client 2 first reads the page with validation (ordering it after
  // client 0's release), then re-reads a field lock-elided — trusting the
  // earlier validation to still hold.
  Spawn(rig.cluster.simulator(), rig.ValidatedRead(2));
  rig.Run();
  Spawn(rig.cluster.simulator(), rig.ElidedRead(2, 16));
  rig.Run();
  ASSERT_EQ(rig.auditor()->violation_count(), 0u);

  // Client 1 then runs a *fully disciplined* locked write cycle. Lock
  // discipline does not save the elided reader — it skipped the version
  // word, so nothing makes it retry — and the race must be the only
  // finding: elision detection does not depend on the writer misbehaving.
  Spawn(rig.cluster.simulator(), rig.CleanCycle(1, 0xBB));
  rig.Run();

  EXPECT_EQ(rig.auditor()->violation_count(), 1u)
      << rig.fabric().CheckAuditClean().ToString();
  EXPECT_EQ(rig.auditor()->CountOfKind(ViolationKind::kWriteWithoutLock), 0u);
  EXPECT_EQ(RaceCount(*rig.auditor()), 1u);
  const Violation* race = FirstRace(*rig.auditor());
  ASSERT_NE(race, nullptr);
  EXPECT_NE(race->detail.find("READ client=2"), std::string::npos)
      << race->detail;
}

TEST(RaceDetectorTest, HandoffAndValidationSuppressRaces) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  // Cross-client lock hand-offs and validated reads interleaved: every
  // pair is HB-ordered through the release->acquire and release->validate
  // edges, so the detector must stay silent.
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xA0));
  rig.Run();
  Spawn(rig.cluster.simulator(), rig.ValidatedRead(2));
  rig.Run();
  Spawn(rig.cluster.simulator(), rig.CleanCycle(1, 0xA1));
  rig.Run();
  Spawn(rig.cluster.simulator(), rig.ValidatedRead(3));
  rig.Run();
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xA2));
  rig.Run();

  EXPECT_EQ(rig.auditor()->violation_count(), 0u)
      << rig.fabric().CheckAuditClean().ToString();
}

TEST(RaceDetectorTest, RepeatedViolationsDeduplicate) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.Run();

  // Five rogue writes, alternating clients so each also races its
  // predecessor: the log must stay at two records (one per kind+word)
  // while the occurrence counters keep the full tally.
  for (int i = 0; i < 5; ++i) {
    Spawn(rig.cluster.simulator(), rig.UnlockedWrite(1 + (i % 2), 0xC0 + i));
    rig.Run();
  }

  EXPECT_EQ(rig.auditor()->violation_count(), 2u);
  EXPECT_EQ(rig.auditor()->CountOfKind(ViolationKind::kWriteWithoutLock), 5u);
  EXPECT_EQ(RaceCount(*rig.auditor()), 5u);
  EXPECT_EQ(rig.auditor()->total_violation_occurrences(), 10u);
  EXPECT_EQ(rig.auditor()->suppressed_violations(), 0u);
  EXPECT_EQ(rig.auditor()->violations()[0].occurrences, 5u);
  // Describe surfaces the fold.
  EXPECT_NE(rig.auditor()->violations()[0].Describe().find("x5"),
            std::string::npos);
}

Task<> DoubleUnlockCycle(Fabric& fabric, uint32_t client, RemotePtr word) {
  const uint64_t observed =
      (co_await fabric.CompareAndSwap(client, word, 0, 1)).value;
  EXPECT_EQ(observed, 0u);
  (void)co_await fabric.FetchAndAdd(client, word, 1);  // release: word = 2
  (void)co_await fabric.FetchAndAdd(client, word, 1);  // double unlock
}

TEST(RaceDetectorTest, DistinctViolationStorageIsCapped) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  // One distinct (kind, target) per page, across more pages than the
  // storage cap: the log stops growing at kMaxStoredViolations and counts
  // the overflow instead of allocating without bound.
  const size_t kPages = VerbAuditor::kMaxStoredViolations + 44;
  struct Sweep {
    static Task<> Go(Rig& rig, size_t pages) {
      for (size_t i = 0; i < pages; ++i) {
        const RemotePtr word =
            rig.cluster.memory_server(0).region().AllocateLocal(kPage);
        co_await DoubleUnlockCycle(rig.fabric(), 0, word);
      }
    }
  };
  Spawn(rig.cluster.simulator(), Sweep::Go(rig, kPages));
  rig.Run();

  EXPECT_EQ(rig.auditor()->violation_count(),
            VerbAuditor::kMaxStoredViolations);
  EXPECT_EQ(rig.auditor()->suppressed_violations(), 44u);
  EXPECT_EQ(rig.auditor()->total_violation_occurrences(), kPages);
}

Task<> ChainedCycle(Fabric& fabric, RemotePtr page, uint32_t client,
                    uint64_t version, uint64_t payload) {
  const uint64_t locked = btree::MakeLockedWord(version, client);
  const uint64_t observed =
      (co_await fabric.CompareAndSwap(client, page, version, locked)).value;
  EXPECT_EQ(observed, version) << "unexpected lock contention";
  std::vector<uint8_t> image(kPage, 0);
  std::memcpy(image.data(), &locked, 8);
  std::memcpy(image.data() + 8, &payload, 8);
  const uint64_t unlocked = version + 2;
  std::vector<Fabric::ChainOp> chain;
  chain.push_back(Fabric::ChainOp::Write(page, image.data(), kPage));
  chain.push_back(Fabric::ChainOp::Write(page, &unlocked, 8));
  co_await fabric.PostChain(client, std::move(chain));
}

TEST(RaceDetectorTest, VerbTraceRecordsChainIds) {
  Rig rig;
  REQUIRE_AUDITOR(rig);
  Spawn(rig.cluster.simulator(), rig.CleanCycle(0, 0xAA));
  rig.Run();
  Spawn(rig.cluster.simulator(),
        ChainedCycle(rig.fabric(), rig.page, 0, 2, 0xBB));
  rig.Run();

  const auto& trace = rig.auditor()->trace();
  ASSERT_FALSE(trace.empty());
  bool chained_write = false;
  for (const auto& record : trace) {
    if (std::string(record.op) == "WRITE" && record.chain != 0) {
      chained_write = true;
    }
  }
  EXPECT_TRUE(chained_write)
      << "chain members must carry their doorbell-chain id:\n"
      << rig.auditor()->DumpTrace();
  EXPECT_NE(rig.auditor()->DumpTrace().find("CAS"), std::string::npos);

  // The ring is bounded and can be disabled.
  rig.auditor()->set_trace_capacity(2);
  EXPECT_LE(rig.auditor()->trace().size(), 2u);
  rig.auditor()->set_trace_capacity(0);
  Spawn(rig.cluster.simulator(), rig.ValidatedRead(1));
  rig.Run();
  EXPECT_TRUE(rig.auditor()->trace().empty());
}

}  // namespace
}  // namespace namtree::rdma
