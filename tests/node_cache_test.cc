// Tests for the Appendix A.4 client-side node cache: LRU eviction, TTL
// expiry, and correctness of the cached index designs under
// cache-invalidating writes. The traversal engine gives every one-sided
// design a cache policy (FG / CG1S: inner-node images; hybrid: leaf
// routes), so each design gets its own hit-rate and staleness coverage.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "index/coarse_one_sided.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "index/node_cache.h"
#include "nam/cluster.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

TEST(NodeCacheTest, HitAfterPut) {
  NodeCache cache(64, 4, 0);
  std::vector<uint8_t> image(64, 0xAB);
  EXPECT_EQ(cache.Get(1, 0), nullptr);
  cache.Put(1, image.data(), 0);
  const uint8_t* hit = cache.Get(1, 100);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit[0], 0xAB);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(NodeCacheTest, LruEviction) {
  NodeCache cache(8, 2, 0);
  std::vector<uint8_t> image(8, 1);
  cache.Put(1, image.data(), 0);
  cache.Put(2, image.data(), 0);
  EXPECT_NE(cache.Get(1, 0), nullptr);  // 1 becomes MRU
  cache.Put(3, image.data(), 0);        // evicts 2
  EXPECT_NE(cache.Get(1, 0), nullptr);
  EXPECT_EQ(cache.Get(2, 0), nullptr);
  EXPECT_NE(cache.Get(3, 0), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(NodeCacheTest, TtlExpiry) {
  NodeCache cache(8, 4, 1000);
  std::vector<uint8_t> image(8, 1);
  cache.Put(1, image.data(), 0);
  EXPECT_NE(cache.Get(1, 999), nullptr);
  EXPECT_EQ(cache.Get(1, 1001), nullptr);
  EXPECT_EQ(cache.expirations(), 1u);
  // Re-put refreshes the epoch.
  cache.Put(1, image.data(), 2000);
  EXPECT_NE(cache.Get(1, 2500), nullptr);
}

TEST(NodeCacheTest, PutOverwritesInPlace) {
  NodeCache cache(8, 2, 0);
  std::vector<uint8_t> a(8, 1);
  std::vector<uint8_t> b(8, 2);
  cache.Put(1, a.data(), 0);
  cache.Put(1, b.data(), 50);
  const uint8_t* hit = cache.Get(1, 60);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit[0], 2);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(NodeCacheTest, InvalidateDrops) {
  NodeCache cache(8, 2, 0);
  std::vector<uint8_t> image(8, 1);
  cache.Put(1, image.data(), 0);
  cache.Invalidate(1);
  EXPECT_EQ(cache.Get(1, 0), nullptr);
  cache.Invalidate(42);  // no-op
}

TEST(NodeCacheTest, PeekDoesNotMutate) {
  // Peek is the speculative predictor's read path: it must leave hit/miss/
  // expiration counters and the LRU order exactly as they were, and it
  // must return TTL-expired images (flagged) instead of erasing them.
  NodeCache cache(8, 3, 1000);
  std::vector<uint8_t> image(8, 7);
  cache.Put(1, image.data(), 0);
  cache.Put(2, image.data(), 0);
  cache.Put(3, image.data(), 0);
  const std::vector<uint64_t> lru_before = cache.LruKeys();

  bool expired = true;
  const uint8_t* hit = cache.Peek(2, 500, &expired);
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(expired);
  EXPECT_EQ(hit[0], 7);
  EXPECT_EQ(cache.Peek(42, 500, &expired), nullptr);

  // A TTL-expired entry is still visible to Peek — and still in the cache.
  hit = cache.Peek(1, 2000, &expired);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(expired);
  EXPECT_EQ(cache.size(), 3u);

  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.expirations(), 0u);
  EXPECT_EQ(cache.LruKeys(), lru_before) << "Peek must not touch the LRU";

  // Get after the Peeks behaves as if they never happened.
  EXPECT_NE(cache.Get(2, 500), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.Get(1, 2000), nullptr);  // now it expires and erases
  EXPECT_EQ(cache.expirations(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(NodeCacheTest, ZeroCapacityDisables) {
  NodeCache cache(8, 0, 0);
  std::vector<uint8_t> image(8, 1);
  cache.Put(1, image.data(), 0);
  EXPECT_EQ(cache.Get(1, 0), nullptr);
}

// ---- Cached fine-grained index ----------------------------------------------

Task<> LookupLoop(DistributedIndex& index, ClientContext& ctx, int rounds,
                  uint64_t keys, uint64_t* found) {
  for (int i = 0; i < rounds; ++i) {
    const Key k = (ctx.rng().NextBelow(keys)) * 2;
    const LookupResult r = co_await index.Lookup(ctx, k);
    if (r.found) (*found)++;
  }
}

TEST(CachedFineGrainedTest, CacheCutsRoundTripsWithoutMisses) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = kSecond;
  FineGrainedIndex index(cluster, ic);
  const uint64_t keys = 20000;
  std::vector<KV> data;
  for (uint64_t i = 0; i < keys; ++i) data.push_back({i * 2, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());

  ClientContext ctx(0, cluster.fabric(), ic.page_size, 7);
  uint64_t found = 0;
  Spawn(cluster.simulator(), LookupLoop(index, ctx, 2000, keys, &found));
  cluster.simulator().Run();
  EXPECT_EQ(found, 2000u);

  const auto stats = index.GetCacheStats();
  EXPECT_GT(stats.hits, stats.misses)
      << "a warmed cache must serve most inner reads";
  // With all inner levels cached, steady-state lookups need ~1 read each.
  EXPECT_LT(static_cast<double>(ctx.round_trips), 2000 * 2.2);
}

TEST(CachedFineGrainedTest, StaleCacheStaysCorrectUnderInserts) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.head_node_interval = 4;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = 10 * kSecond;  // effectively never expires
  FineGrainedIndex index(cluster, ic);
  std::vector<KV> data;
  for (uint64_t i = 0; i < 3000; ++i) data.push_back({i * 4, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());
  cluster.fabric().SetNumClients(3);

  // Client 0 warms its cache.
  ClientContext reader(0, cluster.fabric(), ic.page_size, 1);
  uint64_t found = 0;
  Spawn(cluster.simulator(), LookupLoop(index, reader, 500, 3000 * 2, &found));
  cluster.simulator().Run();

  // Clients 1 and 2 split lots of leaves (reader's cache is now stale).
  struct Writer {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx, Key from,
                     Key to) {
      for (Key k = from; k < to; k += 4) {
        EXPECT_TRUE((co_await index.Insert(ctx, k, k)).ok());
      }
    }
  };
  ClientContext w1(1, cluster.fabric(), ic.page_size, 2);
  ClientContext w2(2, cluster.fabric(), ic.page_size, 3);
  Spawn(cluster.simulator(), Writer::Go(index, w1, 1, 12000));
  Spawn(cluster.simulator(), Writer::Go(index, w2, 2, 12000));
  cluster.simulator().Run();

  // Reader (stale cache) must still find every key, old and new.
  struct Verify {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx,
                     uint64_t* missing) {
      for (Key k = 0; k < 12000; ++k) {
        if (k % 4 == 3) continue;  // never inserted
        const LookupResult r = co_await index.Lookup(ctx, k);
        if (!r.found) (*missing)++;
      }
    }
  };
  uint64_t missing = 0;
  Spawn(cluster.simulator(), Verify::Go(index, reader, &missing));
  cluster.simulator().Run();
  EXPECT_EQ(missing, 0u) << "stale cached routing lost keys";
}

/// One stale-cache round: a reader warms its inner-node cache, a second
/// client splits many leaves (publishing through the doorbell-batched
/// write+unlock / split chains when `verb_chaining` is on), then the
/// reader — still routing through its stale cached inner nodes — looks up
/// every moved key. Returns how many it lost.
uint64_t StaleReaderMisses(bool verb_chaining) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  fc.verb_chaining = verb_chaining;
  Cluster cluster(fc, 32 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 2048;
  ic.client_cache_ttl = 10 * kSecond;  // effectively never expires
  FineGrainedIndex index(cluster, ic);
  std::vector<KV> data;
  for (uint64_t i = 0; i < 2000; ++i) data.push_back({i * 4, i});
  EXPECT_TRUE(index.BulkLoad(data).ok());
  cluster.fabric().SetNumClients(2);

  ClientContext reader(0, cluster.fabric(), ic.page_size, 1);
  uint64_t found = 0;
  Spawn(cluster.simulator(), LookupLoop(index, reader, 400, 2000 * 2, &found));
  cluster.simulator().Run();

  ClientContext writer(1, cluster.fabric(), ic.page_size, 2);
  struct Writer {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx) {
      for (Key k = 1; k < 8000; k += 2) {
        EXPECT_TRUE((co_await index.Insert(ctx, k, k)).ok());
      }
    }
  };
  Spawn(cluster.simulator(), Writer::Go(index, writer));
  cluster.simulator().Run();

  struct Verify {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx,
                     uint64_t* missing) {
      for (Key k = 1; k < 8000; k += 2) {
        const LookupResult r = co_await index.Lookup(ctx, k);
        if (!r.found) (*missing)++;
      }
    }
  };
  uint64_t missing = 0;
  Spawn(cluster.simulator(), Verify::Go(index, reader, &missing));
  cluster.simulator().Run();
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
  return missing;
}

TEST(CachedFineGrainedTest, StaleCacheCatchesChainedLeafWrites) {
  // A stale cached inner node routes the reader to a pre-split leaf; the
  // version-checked leaf read plus the B-link chase must recover every key
  // that a *chained* {write, unlock} publication moved — and behave
  // identically with chaining disabled.
  EXPECT_EQ(StaleReaderMisses(true), 0u)
      << "a chained write+unlock slipped past the stale-cache version check";
  EXPECT_EQ(StaleReaderMisses(false), 0u);
}

TEST(CachedFineGrainedTest, SplitSeedsWriterCacheWithPublishedParent) {
  // The install path seeds the writer's own cache with the parent image it
  // just published (patched to the post-release version word) instead of
  // invalidating it: the next lookup through that parent must be served
  // from cache and go straight to the correct new leaf — exactly one leaf
  // READ, no parent re-read, no B-link detour.
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  Cluster cluster(fc, 16 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.head_node_interval = 0;
  ic.client_cache_pages = 1024;
  ic.client_cache_ttl = 0;  // no expiry
  FineGrainedIndex index(cluster, ic);
  std::vector<KV> data;
  for (uint64_t i = 0; i < 60; ++i) data.push_back({i * 2, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());
  ASSERT_EQ(index.root_level(), 1u) << "test assumes a single inner level";

  ClientContext ctx(0, cluster.fabric(), ic.page_size, 1);
  struct Driver {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx) {
      // Right-edge appends split the rightmost leaf repeatedly; every
      // separator install rewrites the root and seeds the cache with the
      // fresh image.
      for (uint64_t k = 0; k < 20; ++k) {
        EXPECT_TRUE((co_await index.Insert(ctx, 120 + 2 * k, k)).ok());
      }
      const uint64_t before = ctx.round_trips;
      const LookupResult r = co_await index.Lookup(ctx, 120 + 2 * 19);
      EXPECT_TRUE(r.found);
      EXPECT_EQ(ctx.round_trips - before, 1u)
          << "stale or missing cached root: the lookup took a detour";
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx));
  cluster.simulator().Run();
  EXPECT_EQ(index.root_level(), 1u) << "root grew; the 1-read bound is void";
}

// ---- Cached coarse-one-sided index ------------------------------------------
// CG1S shares the inner-image cache policy with FG through the traversal
// engine; the difference is one cached tree per partition instead of one
// global tree.

TEST(CachedCoarseOneSidedTest, CacheServesInnerReadsAcrossPartitions) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = kSecond;
  CoarseOneSidedIndex index(cluster, ic);
  const uint64_t keys = 20000;
  std::vector<KV> data;
  for (uint64_t i = 0; i < keys; ++i) data.push_back({i * 2, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());

  ClientContext ctx(0, cluster.fabric(), ic.page_size, 7);
  uint64_t found = 0;
  Spawn(cluster.simulator(), LookupLoop(index, ctx, 2000, keys, &found));
  cluster.simulator().Run();
  EXPECT_EQ(found, 2000u);

  const auto stats = index.GetCacheStats();
  EXPECT_GT(stats.hits, 0u) << "CG1S descents never hit the inner cache";
  EXPECT_GT(stats.hits, stats.misses)
      << "a warmed cache must serve most inner reads";
  // With every partition's inner levels cached, steady-state lookups need
  // ~1 leaf read each.
  EXPECT_LT(static_cast<double>(ctx.round_trips), 2000 * 2.2);
}

TEST(CachedCoarseOneSidedTest, StaleCacheStaysCorrectUnderInserts) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = 10 * kSecond;  // effectively never expires
  CoarseOneSidedIndex index(cluster, ic);
  std::vector<KV> data;
  for (uint64_t i = 0; i < 3000; ++i) data.push_back({i * 4, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());
  cluster.fabric().SetNumClients(3);

  // Client 0 warms its cache.
  ClientContext reader(0, cluster.fabric(), ic.page_size, 1);
  uint64_t found = 0;
  Spawn(cluster.simulator(), LookupLoop(index, reader, 500, 3000 * 2, &found));
  cluster.simulator().Run();

  // Clients 1 and 2 split leaves in every partition (reader's cached
  // inner images are now stale).
  struct Writer {
    static Task<> Go(CoarseOneSidedIndex& index, ClientContext& ctx, Key from,
                     Key to) {
      for (Key k = from; k < to; k += 4) {
        EXPECT_TRUE((co_await index.Insert(ctx, k, k)).ok());
      }
    }
  };
  ClientContext w1(1, cluster.fabric(), ic.page_size, 2);
  ClientContext w2(2, cluster.fabric(), ic.page_size, 3);
  Spawn(cluster.simulator(), Writer::Go(index, w1, 1, 12000));
  Spawn(cluster.simulator(), Writer::Go(index, w2, 2, 12000));
  cluster.simulator().Run();

  // Reader (stale cache) must still find every key, old and new.
  struct Verify {
    static Task<> Go(CoarseOneSidedIndex& index, ClientContext& ctx,
                     uint64_t* missing) {
      for (Key k = 0; k < 12000; ++k) {
        if (k % 4 == 3) continue;  // never inserted
        const LookupResult r = co_await index.Lookup(ctx, k);
        if (!r.found) (*missing)++;
      }
    }
  };
  uint64_t missing = 0;
  Spawn(cluster.simulator(), Verify::Go(index, reader, &missing));
  cluster.simulator().Run();
  EXPECT_EQ(missing, 0u) << "stale cached routing lost keys";
  EXPECT_GT(index.GetCacheStats().hits, 0u);
}

// ---- Cached hybrid index ----------------------------------------------------
// The hybrid design's cache policy stores resolved leaf ROUTES (lookup key
// -> leaf pointer) instead of node images: a hit skips the find-leaf RPC
// entirely. Stale routes are safe because leaf coverage only ever moves
// right — the B-link chase recovers.

TEST(CachedHybridTest, RouteCacheSkipsFindLeafRpcs) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = kSecond;
  HybridIndex index(cluster, ic);
  std::vector<KV> data;
  for (uint64_t i = 0; i < 5000; ++i) data.push_back({i * 2, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());

  // A small hot set looked up repeatedly: after the first round every
  // route is cached, so each further lookup is 1 leaf READ, 0 RPCs.
  ClientContext ctx(0, cluster.fabric(), ic.page_size, 7);
  struct Driver {
    static Task<> Go(HybridIndex& index, ClientContext& ctx) {
      for (int round = 0; round < 10; ++round) {
        for (Key k = 0; k < 100; ++k) {
          const LookupResult r = co_await index.Lookup(ctx, k * 2);
          EXPECT_TRUE(r.found);
        }
      }
    }
  };
  Spawn(cluster.simulator(), Driver::Go(index, ctx));
  cluster.simulator().Run();

  const auto stats = index.GetCacheStats();
  EXPECT_EQ(stats.hits, 9u * 100u) << "every repeat lookup must hit a route";
  EXPECT_EQ(stats.misses, 100u);
  // Cold lookups pay RPC + leaf read; warm ones skip the RPC. The total
  // must beat the all-RPC cost of 2 round trips per lookup.
  EXPECT_LT(ctx.round_trips, 1000u * 2);
  EXPECT_GE(ctx.round_trips, 1000u);
}

TEST(CachedHybridTest, StaleRoutesRecoverAfterSplits) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  Cluster cluster(fc, 32 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  ic.client_cache_pages = 4096;
  ic.client_cache_ttl = 10 * kSecond;  // effectively never expires
  HybridIndex index(cluster, ic);
  std::vector<KV> data;
  for (uint64_t i = 0; i < 2000; ++i) data.push_back({i * 4, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());
  cluster.fabric().SetNumClients(2);

  // Reader caches a route for every live key.
  ClientContext reader(0, cluster.fabric(), ic.page_size, 1);
  struct Warm {
    static Task<> Go(HybridIndex& index, ClientContext& ctx) {
      for (Key k = 0; k < 2000 * 4; k += 4) {
        const LookupResult r = co_await index.Lookup(ctx, k);
        EXPECT_TRUE(r.found);
      }
    }
  };
  Spawn(cluster.simulator(), Warm::Go(index, reader));
  cluster.simulator().Run();

  // A writer splits most leaves; the reader's cached routes now point at
  // pre-split leaves whose upper halves moved right.
  ClientContext writer(1, cluster.fabric(), ic.page_size, 2);
  struct Writer {
    static Task<> Go(HybridIndex& index, ClientContext& ctx) {
      for (Key k = 1; k < 8000; k += 2) {
        EXPECT_TRUE((co_await index.Insert(ctx, k, k)).ok());
      }
    }
  };
  Spawn(cluster.simulator(), Writer::Go(index, writer));
  cluster.simulator().Run();

  // The reader re-reads every key through its stale routes: the B-link
  // sibling chase must recover each one.
  struct Verify {
    static Task<> Go(HybridIndex& index, ClientContext& ctx,
                     uint64_t* missing, uint64_t* route_hits) {
      const uint64_t hits_before = index.GetCacheStats().hits;
      for (Key k = 0; k < 8000; ++k) {
        if (k % 4 == 2) continue;  // even but not a bulk-loaded multiple of 4
        const LookupResult r = co_await index.Lookup(ctx, k);
        if (!r.found) (*missing)++;
      }
      *route_hits = index.GetCacheStats().hits - hits_before;
    }
  };
  uint64_t missing = 0;
  uint64_t route_hits = 0;
  Spawn(cluster.simulator(), Verify::Go(index, reader, &missing, &route_hits));
  cluster.simulator().Run();
  EXPECT_EQ(missing, 0u) << "a stale route lost keys";
  EXPECT_GT(route_hits, 0u) << "the verify pass never exercised the cache";
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
}

TEST(CatalogBootstrapTest, FreshClientLearnsTheRootRemotely) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  Cluster cluster(fc, 64 << 20);
  IndexConfig ic;
  ic.page_size = 256;
  FineGrainedIndex index(cluster, ic);
  std::vector<KV> data;
  for (uint64_t i = 0; i < 5000; ++i) data.push_back({i * 2, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());
  const rdma::RemotePtr loaded_root = index.root();
  const uint8_t loaded_level = index.root_level();

  ClientContext ctx(0, cluster.fabric(), ic.page_size, 1);
  struct Driver {
    static Task<> Go(FineGrainedIndex& index, ClientContext& ctx,
                     rdma::RemotePtr expected_root, uint8_t expected_level) {
      EXPECT_TRUE((co_await index.BootstrapFromCatalog(ctx)).ok());
      EXPECT_EQ(index.root().raw(), expected_root.raw());
      EXPECT_EQ(index.root_level(), expected_level);
      // Grow the root via splits; the catalog write keeps bootstrap fresh.
      for (uint64_t k = 0; k < 5000; ++k) {
        EXPECT_TRUE((co_await index.Insert(ctx, k * 2 + 1, k)).ok());
      }
      const rdma::RemotePtr grown = index.root();
      EXPECT_TRUE((co_await index.BootstrapFromCatalog(ctx)).ok());
      EXPECT_EQ(index.root().raw(), grown.raw());
      const LookupResult r = co_await index.Lookup(ctx, 101);
      EXPECT_TRUE(r.found);
    }
  };
  Spawn(cluster.simulator(),
        Driver::Go(index, ctx, loaded_root, loaded_level));
  cluster.simulator().Run();
}

}  // namespace
}  // namespace namtree::index
