// Differential testing: a single client replays the same random operation
// sequence (inserts, deletes, updates, lookups, scans, periodic GC) against
// every index-design instance — the NAM designs in the simulator plus the
// §7 shared-nothing baseline on real threads — and a std::multimap
// reference; every query result must match the model exactly, and the
// final full scans of all designs must be identical.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "btree/shared_nothing.h"
#include "index/coarse_grained.h"
#include "index/coarse_one_sided.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "nam/cluster.h"

namespace namtree::index {
namespace {

using btree::Key;
using btree::KV;
using btree::Value;
using nam::ClientContext;
using nam::Cluster;
using sim::Spawn;
using sim::Task;

struct Op {
  enum Kind { kInsert, kDelete, kLookup, kScan, kGc, kUpdate, kLookupAll }
      kind;
  Key key = 0;
  Key hi = 0;
  Value value = 0;
};

std::vector<Op> MakeTrace(uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<Op> trace;
  for (int i = 0; i < n; ++i) {
    Op op;
    const double a = rng.NextDouble();
    op.key = rng.NextBelow(4000);
    if (a < 0.35) {
      op.kind = Op::kInsert;
      op.value = rng.Next() >> 1;
    } else if (a < 0.48) {
      op.kind = Op::kDelete;
    } else if (a < 0.58) {
      op.kind = Op::kUpdate;
      op.value = rng.Next() >> 1;
    } else if (a < 0.66) {
      op.kind = Op::kLookupAll;
    } else if (a < 0.82) {
      op.kind = Op::kLookup;
    } else if (a < 0.99) {
      op.kind = Op::kScan;
      op.hi = op.key + 1 + rng.NextBelow(200);
    } else {
      op.kind = Op::kGc;
    }
    trace.push_back(op);
  }
  return trace;
}

Task<> Replay(DistributedIndex& index, ClientContext& ctx,
              const std::vector<Op>& trace, std::vector<KV>* final_scan) {
  std::multimap<Key, Value> model;
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::kInsert: {
        EXPECT_TRUE((co_await index.Insert(ctx, op.key, op.value)).ok());
        model.emplace(op.key, op.value);
        break;
      }
      case Op::kDelete: {
        const bool deleted = (co_await index.Delete(ctx, op.key)).ok();
        // Deletes tombstone the first live duplicate: erase lower_bound.
        auto it = model.lower_bound(op.key);
        const bool exists = it != model.end() && it->first == op.key;
        EXPECT_EQ(deleted, exists) << "delete(" << op.key << ")";
        if (exists) model.erase(it);
        break;
      }
      case Op::kLookup: {
        const LookupResult r = co_await index.Lookup(ctx, op.key);
        EXPECT_EQ(r.found, model.count(op.key) > 0)
            << "lookup(" << op.key << ") on " << index.name();
        if (r.found) {
          // The returned value must be one of the live values of the key.
          bool matches = false;
          for (auto [it, end] = model.equal_range(op.key); it != end; ++it) {
            matches |= (it->second == r.value);
          }
          EXPECT_TRUE(matches) << "lookup(" << op.key << ") stale value";
        }
        break;
      }
      case Op::kScan: {
        std::vector<KV> out;
        const uint64_t n = co_await index.Scan(ctx, op.key, op.hi, &out);
        const uint64_t expected =
            std::distance(model.lower_bound(op.key), model.lower_bound(op.hi));
        EXPECT_EQ(n, expected)
            << "scan[" << op.key << "," << op.hi << ") on " << index.name();
        break;
      }
      case Op::kGc: {
        (void)co_await index.GarbageCollect(ctx);
        break;
      }
      case Op::kUpdate: {
        const bool updated =
            (co_await index.Update(ctx, op.key, op.value)).ok();
        // The index updates the *first live* duplicate in place; page
        // order preserves insertion order of equal keys, and so does
        // std::multimap, so mutating lower_bound's value mirrors it.
        auto it = model.lower_bound(op.key);
        const bool exists = it != model.end() && it->first == op.key;
        EXPECT_EQ(updated, exists) << "update(" << op.key << ")";
        if (exists) it->second = op.value;
        break;
      }
      case Op::kLookupAll: {
        std::vector<Value> values;
        const uint64_t n = co_await index.LookupAll(ctx, op.key, &values);
        EXPECT_EQ(n, model.count(op.key))
            << "lookup_all(" << op.key << ") on " << index.name();
        break;
      }
    }
  }
  (void)co_await index.Scan(ctx, 0, btree::kInfinityKey, final_scan);
}

/// Synchronous mirror of Replay for the shared-nothing baseline, whose
/// client API is blocking (real threads, no simulator). Same trace, same
/// model checks, same final full scan.
void ReplaySharedNothing(btree::SharedNothingCluster& cluster,
                         const std::vector<Op>& trace,
                         std::vector<KV>* final_scan) {
  std::multimap<Key, Value> model;
  for (const Op& op : trace) {
    switch (op.kind) {
      case Op::kInsert: {
        EXPECT_TRUE(cluster.Insert(op.key, op.value).ok());
        model.emplace(op.key, op.value);
        break;
      }
      case Op::kDelete: {
        const bool deleted = cluster.Delete(op.key).ok();
        auto it = model.lower_bound(op.key);
        const bool exists = it != model.end() && it->first == op.key;
        EXPECT_EQ(deleted, exists) << "sn delete(" << op.key << ")";
        if (exists) model.erase(it);
        break;
      }
      case Op::kLookup: {
        const auto r = cluster.Lookup(op.key);
        EXPECT_EQ(r.ok(), model.count(op.key) > 0)
            << "sn lookup(" << op.key << ")";
        if (r.ok()) {
          bool matches = false;
          for (auto [it, end] = model.equal_range(op.key); it != end; ++it) {
            matches |= (it->second == r.value());
          }
          EXPECT_TRUE(matches) << "sn lookup(" << op.key << ") stale value";
        }
        break;
      }
      case Op::kScan: {
        std::vector<KV> out;
        const uint64_t n = cluster.Scan(op.key, op.hi, &out);
        const uint64_t expected =
            std::distance(model.lower_bound(op.key), model.lower_bound(op.hi));
        EXPECT_EQ(n, expected)
            << "sn scan[" << op.key << "," << op.hi << ")";
        break;
      }
      case Op::kGc: {
        (void)cluster.GarbageCollect();
        break;
      }
      case Op::kUpdate: {
        const bool updated = cluster.Update(op.key, op.value).ok();
        auto it = model.lower_bound(op.key);
        const bool exists = it != model.end() && it->first == op.key;
        EXPECT_EQ(updated, exists) << "sn update(" << op.key << ")";
        if (exists) it->second = op.value;
        break;
      }
      case Op::kLookupAll: {
        // The shared-nothing client API has no LookupAll; a scan of the
        // one-key range [key, key+1) is its moral equivalent.
        std::vector<KV> values;
        const uint64_t n = cluster.Scan(op.key, op.key + 1, &values);
        EXPECT_EQ(n, model.count(op.key))
            << "sn lookup_all(" << op.key << ")";
        break;
      }
    }
  }
  (void)cluster.Scan(0, btree::kInfinityKey, final_scan);
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST_P(DifferentialTest, AllDesignsMatchTheModel) {
  const auto trace = MakeTrace(GetParam(), 3000);
  std::vector<KV> data;
  for (uint64_t i = 0; i < 1000; ++i) data.push_back({i * 4, i});

  std::vector<std::vector<KV>> final_scans;
  for (int design = 0; design < 6; ++design) {
    rdma::FabricConfig fabric_config;
    fabric_config.num_memory_servers = 4;
    Cluster cluster(fabric_config, 64 << 20);
    IndexConfig index_config;
    index_config.page_size = 256;
    index_config.head_node_interval = 4;
    std::unique_ptr<DistributedIndex> index;
    switch (design) {
      case 0:
        index_config.partition = PartitionKind::kRange;
        index = std::make_unique<CoarseGrainedIndex>(cluster, index_config);
        break;
      case 1:
        index_config.partition = PartitionKind::kHash;
        index = std::make_unique<CoarseGrainedIndex>(cluster, index_config);
        break;
      case 2:
        index = std::make_unique<FineGrainedIndex>(cluster, index_config);
        break;
      case 3:
        index = std::make_unique<HybridIndex>(cluster, index_config);
        break;
      case 4:
        index =
            std::make_unique<CoarseOneSidedIndex>(cluster, index_config);
        break;
      default:
        index_config.partition = PartitionKind::kHash;
        index =
            std::make_unique<CoarseOneSidedIndex>(cluster, index_config);
        break;
    }
    ASSERT_TRUE(index->BulkLoad(data).ok());

    ClientContext ctx(0, cluster.fabric(), index_config.page_size, 1);
    std::vector<KV> final_scan;
    // The initial data is part of the model: account for it by replaying
    // on top and comparing scans that exclude nothing. (The model inside
    // Replay starts empty, so seed it through the trace instead: all
    // queries compare against model + base data via the scan count below.)
    // Simpler and fully strict: delete the base data up front.
    struct Wipe {
      static Task<> Go(DistributedIndex& index, ClientContext& ctx,
                       const std::vector<KV>& data) {
        for (const KV& kv : data) {
          EXPECT_TRUE((co_await index.Delete(ctx, kv.key)).ok());
        }
        (void)co_await index.GarbageCollect(ctx);
      }
    };
    Spawn(cluster.simulator(), Wipe::Go(*index, ctx, data));
    cluster.simulator().Run();

    Spawn(cluster.simulator(), Replay(*index, ctx, trace, &final_scan));
    cluster.simulator().Run();
    final_scans.push_back(std::move(final_scan));
  }

  // The shared-nothing baseline (real threads, same B-link page substrate)
  // replays the identical trace through its blocking client API.
  {
    btree::SharedNothingCluster sn(/*nodes=*/4, /*workers_per_node=*/2,
                                   /*page_size=*/256);
    ASSERT_TRUE(sn.BulkLoad(data).ok());
    for (const KV& kv : data) {
      EXPECT_TRUE(sn.Delete(kv.key).ok());
    }
    (void)sn.GarbageCollect();
    std::vector<KV> final_scan;
    ReplaySharedNothing(sn, trace, &final_scan);
    final_scans.push_back(std::move(final_scan));
  }

  // All seven design instances end in the same logical state.
  for (size_t d = 1; d < final_scans.size(); ++d) {
    ASSERT_EQ(final_scans[d].size(), final_scans[0].size()) << "design " << d;
    for (size_t i = 0; i < final_scans[0].size(); ++i) {
      EXPECT_EQ(final_scans[d][i].key, final_scans[0][i].key);
      EXPECT_EQ(final_scans[d][i].value, final_scans[0][i].value);
    }
  }
}

}  // namespace
}  // namespace namtree::index
