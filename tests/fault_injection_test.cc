// Fault-injection tests: the protocols must stay correct (differential
// checks + structural invariants) under pathological timing — heavy wire
// jitter and straggler memory servers — and the UD transport option must
// preserve RPC semantics while changing only costs.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "index/inspector.h"
#include "nam/cluster.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace namtree::index {
namespace {

using btree::KV;
using nam::Cluster;

std::vector<KV> MakeData(uint64_t n) {
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * 2, i});
  return data;
}

ycsb::WorkloadMix StressMix() {
  ycsb::WorkloadMix mix;
  mix.point = 0.30;
  mix.range = 0.10;
  mix.insert = 0.35;
  mix.update = 0.10;
  mix.remove = 0.15;
  mix.range_selectivity = 0.01;
  return mix;
}

struct StressOutcome {
  uint64_t ops = 0;
  uint64_t live_entries = 0;
  bool sound = false;
  std::string report;
};

template <typename Index>
StressOutcome RunStress(const rdma::FabricConfig& fabric_config,
                        uint64_t seed) {
  Cluster cluster(fabric_config, 64 << 20);
  IndexConfig config;
  config.page_size = 256;
  config.head_node_interval = 4;
  Index index(cluster, config);
  const uint64_t keys = 4000;
  EXPECT_TRUE(index.BulkLoad(MakeData(keys)).ok());

  ycsb::RunConfig run;
  run.num_clients = 16;
  run.warmup = 0;
  run.duration = 25 * kMillisecond;
  run.seed = seed;
  run.gc_interval = 6 * kMillisecond;
  run.mix = StressMix();
  const auto result = ycsb::RunWorkload(cluster, index, keys, run);

  // Pathological timing (jitter, stragglers) stresses protocol
  // interleavings — exactly what the verb auditor is there to police.
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();

  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  StressOutcome outcome;
  outcome.ops = result.ops;
  outcome.live_entries = report.live_entries;
  outcome.sound = report.ok();
  outcome.report = report.ToString();
  return outcome;
}

class JitterTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Jitters, JitterTest,
                         ::testing::Values(0.5, 2.0, 8.0));

TEST_P(JitterTest, FineGrainedSurvivesWireJitter) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  fc.latency_jitter = GetParam();
  fc.jitter_seed = 0xABCDEF;
  const auto outcome = RunStress<FineGrainedIndex>(fc, 11);
  EXPECT_GT(outcome.ops, 100u);
  EXPECT_TRUE(outcome.sound) << outcome.report;
}

TEST_P(JitterTest, HybridSurvivesWireJitter) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  fc.latency_jitter = GetParam();
  const auto outcome = RunStress<HybridIndex>(fc, 12);
  EXPECT_GT(outcome.ops, 100u);
  EXPECT_TRUE(outcome.sound) << outcome.report;
}

TEST(StragglerTest, ProtocolsSurviveASlowServer) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  fc.server_slowdown = {1.0, 8.0, 1.0, 1.0};  // server 1 is 8x slower
  {
    const auto outcome = RunStress<FineGrainedIndex>(fc, 21);
    EXPECT_TRUE(outcome.sound) << outcome.report;
  }
  {
    const auto outcome = RunStress<CoarseGrainedIndex>(fc, 22);
    EXPECT_TRUE(outcome.sound) << outcome.report;
  }
  {
    const auto outcome = RunStress<HybridIndex>(fc, 23);
    EXPECT_TRUE(outcome.sound) << outcome.report;
  }
}

TEST(StragglerTest, StragglerHurtsCoarseGrainedThroughput) {
  auto throughput = [](std::vector<double> slowdown) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 4;
    fc.server_slowdown = std::move(slowdown);
    Cluster cluster(fc, 64 << 20);
    IndexConfig config;
    CoarseGrainedIndex index(cluster, config);
    const uint64_t keys = 50000;
    EXPECT_TRUE(index.BulkLoad(ycsb::GenerateDataset(keys)).ok());
    ycsb::RunConfig run;
    run.num_clients = 64;
    run.warmup = kMillisecond;
    run.duration = 10 * kMillisecond;
    return ycsb::RunWorkload(cluster, index, keys, run).ops_per_sec;
  };
  const double healthy = throughput({});
  const double degraded = throughput({1.0, 10.0, 1.0, 1.0});
  // A 10x straggler owns 1/4 of the key space: closed-loop throughput must
  // drop noticeably but not collapse to the straggler alone.
  EXPECT_LT(degraded, 0.8 * healthy);
  EXPECT_GT(degraded, 0.1 * healthy);
}

TEST(TransportTest, UdRpcSemanticsMatchRc) {
  for (auto transport :
       {rdma::FabricConfig::RpcTransport::kReliableConnection,
        rdma::FabricConfig::RpcTransport::kUnreliableDatagram}) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 4;
    fc.rpc_transport = transport;
    const auto outcome = RunStress<CoarseGrainedIndex>(fc, 31);
    EXPECT_GT(outcome.ops, 100u);
    EXPECT_TRUE(outcome.sound) << outcome.report;
  }
}

TEST(TransportTest, UdIsCheaperForSmallMessagesCostlierForLarge) {
  auto throughput = [](rdma::FabricConfig::RpcTransport transport,
                       const ycsb::WorkloadMix& mix) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 4;
    fc.rpc_transport = transport;
    fc.workers_per_server = 64;  // expose the NIC, not the CPU
    fc.rpc_fixed_ns = 200;
    fc.cpu_inner_node_ns = 50;
    fc.cpu_leaf_node_ns = 50;
    fc.twosided_engine_ns = 800;  // make message processing the bottleneck
    fc.ud_engine_ns = 200;
    fc.ud_mtu = 1024;
    Cluster cluster(fc, 64 << 20);
    IndexConfig config;
    CoarseGrainedIndex index(cluster, config);
    const uint64_t keys = 100000;
    EXPECT_TRUE(index.BulkLoad(ycsb::GenerateDataset(keys)).ok());
    ycsb::RunConfig run;
    run.num_clients = 256;
    run.warmup = kMillisecond;
    run.duration = 10 * kMillisecond;
    run.mix = mix;
    return ycsb::RunWorkload(cluster, index, keys, run).ops_per_sec;
  };
  using Transport = rdma::FabricConfig::RpcTransport;
  // Small messages (point queries): UD's cheaper per-message cost wins.
  EXPECT_GT(throughput(Transport::kUnreliableDatagram, ycsb::WorkloadA()),
            throughput(Transport::kReliableConnection, ycsb::WorkloadA()));
  // Large responses (range results) fragment under UD.
  EXPECT_LT(
      throughput(Transport::kUnreliableDatagram, ycsb::WorkloadB(0.01)),
      throughput(Transport::kReliableConnection, ycsb::WorkloadB(0.01)));
}

}  // namespace
}  // namespace namtree::index

namespace namtree::index {
namespace {

// Region exhaustion: when RDMA_ALLOC runs dry, one-sided inserts must fail
// cleanly with OutOfMemory and never corrupt the structure.
TEST(ResourceExhaustionTest, FineGrainedInsertsFailCleanlyWhenRegionsFill) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  // Tiny regions: the bulk load fits, split headroom does not.
  nam::Cluster cluster(fc, 96 * 1024);
  IndexConfig config;
  config.page_size = 256;
  config.head_node_interval = 0;
  FineGrainedIndex index(cluster, config);
  std::vector<btree::KV> data;
  for (uint64_t i = 0; i < 2500; ++i) data.push_back({i * 4, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());

  nam::ClientContext ctx(0, cluster.fabric(), config.page_size, 1);
  struct Driver {
    static sim::Task<> Go(FineGrainedIndex& index, nam::ClientContext& ctx,
                          uint64_t* ok_count, uint64_t* oom_count) {
      for (uint64_t k = 0; k < 10000; ++k) {
        const Status s = co_await index.Insert(ctx, k * 4 + 1, k);
        if (s.ok()) {
          (*ok_count)++;
        } else if (s.IsOutOfMemory()) {
          (*oom_count)++;
        } else {
          ADD_FAILURE() << "unexpected status " << s.ToString();
        }
      }
    }
  };
  uint64_t ok_count = 0;
  uint64_t oom_count = 0;
  sim::Spawn(cluster.simulator(), Driver::Go(index, ctx, &ok_count,
                                             &oom_count));
  cluster.simulator().Run();
  EXPECT_GT(ok_count, 0u);
  EXPECT_GT(oom_count, 0u) << "the region never filled; shrink it";

  // The index remains structurally sound and fully readable.
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
  struct Verify {
    static sim::Task<> Go(FineGrainedIndex& index, nam::ClientContext& ctx,
                          uint64_t expected_minimum) {
      const uint64_t n =
          co_await index.Scan(ctx, 0, btree::kInfinityKey, nullptr);
      EXPECT_GE(n, expected_minimum);
    }
  };
  sim::Spawn(cluster.simulator(), Verify::Go(index, ctx, 2500 + ok_count));
  cluster.simulator().Run();
}

}  // namespace
}  // namespace namtree::index
