// Fault-injection tests: the protocols must stay correct (differential
// checks + structural invariants) under pathological timing — heavy wire
// jitter and straggler memory servers — and the UD transport option must
// preserve RPC semantics while changing only costs. The second half
// injects crash faults (FabricConfig::crash_points / Fabric::KillClient):
// survivors must keep making progress, orphaned locks must be reclaimed
// through the lease/steal protocol (docs/fault_model.md), RPCs must
// respect their deadline, and the structure must inspect sound after a
// recovery sweep.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "index/inspector.h"
#include "index/remote_ops.h"
#include "nam/cluster.h"
#include "rdma/audit.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace namtree::index {
namespace {

using btree::KV;
using nam::Cluster;

std::vector<KV> MakeData(uint64_t n) {
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * 2, i});
  return data;
}

ycsb::WorkloadMix StressMix() {
  ycsb::WorkloadMix mix;
  mix.point = 0.30;
  mix.range = 0.10;
  mix.insert = 0.35;
  mix.update = 0.10;
  mix.remove = 0.15;
  mix.range_selectivity = 0.01;
  return mix;
}

struct StressOutcome {
  uint64_t ops = 0;
  uint64_t live_entries = 0;
  bool sound = false;
  std::string report;
};

template <typename Index>
StressOutcome RunStress(const rdma::FabricConfig& fabric_config,
                        uint64_t seed) {
  Cluster cluster(fabric_config, 64 << 20);
  IndexConfig config;
  config.page_size = 256;
  config.head_node_interval = 4;
  Index index(cluster, config);
  const uint64_t keys = 4000;
  EXPECT_TRUE(index.BulkLoad(MakeData(keys)).ok());

  ycsb::RunConfig run;
  run.num_clients = 16;
  run.warmup = 0;
  run.duration = 25 * kMillisecond;
  run.seed = seed;
  run.gc_interval = 6 * kMillisecond;
  run.mix = StressMix();
  const auto result = ycsb::RunWorkload(cluster, index, keys, run);

  // Pathological timing (jitter, stragglers) stresses protocol
  // interleavings — exactly what the verb auditor is there to police.
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();

  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  StressOutcome outcome;
  outcome.ops = result.ops();
  outcome.live_entries = report.live_entries;
  outcome.sound = report.ok();
  outcome.report = report.ToString();
  return outcome;
}

class JitterTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Jitters, JitterTest,
                         ::testing::Values(0.5, 2.0, 8.0));

TEST_P(JitterTest, FineGrainedSurvivesWireJitter) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  fc.latency_jitter = GetParam();
  fc.jitter_seed = 0xABCDEF;
  const auto outcome = RunStress<FineGrainedIndex>(fc, 11);
  EXPECT_GT(outcome.ops, 100u);
  EXPECT_TRUE(outcome.sound) << outcome.report;
}

TEST_P(JitterTest, HybridSurvivesWireJitter) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  fc.latency_jitter = GetParam();
  const auto outcome = RunStress<HybridIndex>(fc, 12);
  EXPECT_GT(outcome.ops, 100u);
  EXPECT_TRUE(outcome.sound) << outcome.report;
}

TEST(StragglerTest, ProtocolsSurviveASlowServer) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  fc.server_slowdown = {1.0, 8.0, 1.0, 1.0};  // server 1 is 8x slower
  {
    const auto outcome = RunStress<FineGrainedIndex>(fc, 21);
    EXPECT_TRUE(outcome.sound) << outcome.report;
  }
  {
    const auto outcome = RunStress<CoarseGrainedIndex>(fc, 22);
    EXPECT_TRUE(outcome.sound) << outcome.report;
  }
  {
    const auto outcome = RunStress<HybridIndex>(fc, 23);
    EXPECT_TRUE(outcome.sound) << outcome.report;
  }
}

TEST(StragglerTest, StragglerHurtsCoarseGrainedThroughput) {
  auto throughput = [](std::vector<double> slowdown) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 4;
    fc.server_slowdown = std::move(slowdown);
    Cluster cluster(fc, 64 << 20);
    IndexConfig config;
    CoarseGrainedIndex index(cluster, config);
    const uint64_t keys = 50000;
    EXPECT_TRUE(index.BulkLoad(ycsb::GenerateDataset(keys)).ok());
    ycsb::RunConfig run;
    run.num_clients = 64;
    run.warmup = kMillisecond;
    run.duration = 10 * kMillisecond;
    return ycsb::RunWorkload(cluster, index, keys, run).ops_per_sec;
  };
  const double healthy = throughput({});
  const double degraded = throughput({1.0, 10.0, 1.0, 1.0});
  // A 10x straggler owns 1/4 of the key space: closed-loop throughput must
  // drop noticeably but not collapse to the straggler alone.
  EXPECT_LT(degraded, 0.8 * healthy);
  EXPECT_GT(degraded, 0.1 * healthy);
}

TEST(TransportTest, UdRpcSemanticsMatchRc) {
  for (auto transport :
       {rdma::FabricConfig::RpcTransport::kReliableConnection,
        rdma::FabricConfig::RpcTransport::kUnreliableDatagram}) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 4;
    fc.rpc_transport = transport;
    const auto outcome = RunStress<CoarseGrainedIndex>(fc, 31);
    EXPECT_GT(outcome.ops, 100u);
    EXPECT_TRUE(outcome.sound) << outcome.report;
  }
}

TEST(TransportTest, UdIsCheaperForSmallMessagesCostlierForLarge) {
  auto throughput = [](rdma::FabricConfig::RpcTransport transport,
                       const ycsb::WorkloadMix& mix) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 4;
    fc.rpc_transport = transport;
    fc.workers_per_server = 64;  // expose the NIC, not the CPU
    fc.rpc_fixed_ns = 200;
    fc.cpu_inner_node_ns = 50;
    fc.cpu_leaf_node_ns = 50;
    fc.twosided_engine_ns = 800;  // make message processing the bottleneck
    fc.ud_engine_ns = 200;
    fc.ud_mtu = 1024;
    Cluster cluster(fc, 64 << 20);
    IndexConfig config;
    CoarseGrainedIndex index(cluster, config);
    const uint64_t keys = 100000;
    EXPECT_TRUE(index.BulkLoad(ycsb::GenerateDataset(keys)).ok());
    ycsb::RunConfig run;
    run.num_clients = 256;
    run.warmup = kMillisecond;
    run.duration = 10 * kMillisecond;
    run.mix = mix;
    return ycsb::RunWorkload(cluster, index, keys, run).ops_per_sec;
  };
  using Transport = rdma::FabricConfig::RpcTransport;
  // Small messages (point queries): UD's cheaper per-message cost wins.
  EXPECT_GT(throughput(Transport::kUnreliableDatagram, ycsb::WorkloadA()),
            throughput(Transport::kReliableConnection, ycsb::WorkloadA()));
  // Large responses (range results) fragment under UD.
  EXPECT_LT(
      throughput(Transport::kUnreliableDatagram, ycsb::WorkloadB(0.01)),
      throughput(Transport::kReliableConnection, ycsb::WorkloadB(0.01)));
}

}  // namespace
}  // namespace namtree::index

namespace namtree::index {
namespace {

// Region exhaustion: when RDMA_ALLOC runs dry, one-sided inserts must fail
// cleanly with OutOfMemory and never corrupt the structure.
TEST(ResourceExhaustionTest, FineGrainedInsertsFailCleanlyWhenRegionsFill) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  // Tiny regions: the bulk load fits, split headroom does not.
  nam::Cluster cluster(fc, 96 * 1024);
  IndexConfig config;
  config.page_size = 256;
  config.head_node_interval = 0;
  FineGrainedIndex index(cluster, config);
  std::vector<btree::KV> data;
  for (uint64_t i = 0; i < 2500; ++i) data.push_back({i * 4, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());

  nam::ClientContext ctx(0, cluster.fabric(), config.page_size, 1);
  struct Driver {
    static sim::Task<> Go(FineGrainedIndex& index, nam::ClientContext& ctx,
                          uint64_t* ok_count, uint64_t* oom_count) {
      for (uint64_t k = 0; k < 10000; ++k) {
        const Status s = co_await index.Insert(ctx, k * 4 + 1, k);
        if (s.ok()) {
          (*ok_count)++;
        } else if (s.IsOutOfMemory()) {
          (*oom_count)++;
        } else {
          ADD_FAILURE() << "unexpected status " << s.ToString();
        }
      }
    }
  };
  uint64_t ok_count = 0;
  uint64_t oom_count = 0;
  sim::Spawn(cluster.simulator(), Driver::Go(index, ctx, &ok_count,
                                             &oom_count));
  cluster.simulator().Run();
  EXPECT_GT(ok_count, 0u);
  EXPECT_GT(oom_count, 0u) << "the region never filled; shrink it";

  // The index remains structurally sound and fully readable.
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
  struct Verify {
    static sim::Task<> Go(FineGrainedIndex& index, nam::ClientContext& ctx,
                          uint64_t expected_minimum) {
      const uint64_t n =
          co_await index.Scan(ctx, 0, btree::kInfinityKey, nullptr);
      EXPECT_GE(n, expected_minimum);
    }
  };
  sim::Spawn(cluster.simulator(), Verify::Go(index, ctx, 2500 + ok_count));
  cluster.simulator().Run();
}

}  // namespace
}  // namespace namtree::index

// ---------------------------------------------------------------------------
// Crash faults: clients are killed mid-protocol and the survivors must keep
// going, reclaim the victims' orphaned locks, and leave a sound structure.
// ---------------------------------------------------------------------------

namespace namtree::index {
namespace {

using btree::KV;
using nam::Cluster;

struct CrashOutcome {
  uint64_t ops = 0;
  uint64_t dead_clients = 0;
  uint64_t lock_steals = 0;  ///< across the run and the recovery sweep
  bool sound = false;
  std::string report;
};

// Mixed read/write stress with a crash schedule, followed by a recovery
// sweep from a *surviving* client: full-keyspace lookups cross every
// descent path (lease-stealing inner-node orphans on the way) and a scan +
// GC pass walks the whole leaf chain (stealing leaf orphans). Only then do
// we assert quiescent invariants — an orphaned lock bit is a soundness
// violation the inspector reports.
template <typename Index>
CrashOutcome RunCrashStress(rdma::FabricConfig fc, uint64_t seed) {
  fc.lock_lease_ns = 100 * kMicrosecond;
  Cluster cluster(fc, 64 << 20);
  IndexConfig config;
  config.page_size = 256;
  config.head_node_interval = 4;
  Index index(cluster, config);
  const uint64_t keys = 4000;
  EXPECT_TRUE(index.BulkLoad(MakeData(keys)).ok());

  ycsb::RunConfig run;
  run.num_clients = 16;
  run.warmup = 0;
  run.duration = 25 * kMillisecond;
  run.seed = seed;
  run.gc_interval = 6 * kMillisecond;
  run.mix = StressMix();
  const auto result = ycsb::RunWorkload(cluster, index, keys, run);

  nam::ClientContext rec(15, cluster.fabric(), config.page_size,
                         seed ^ 0x5ECULL);
  EXPECT_TRUE(cluster.fabric().ClientAlive(rec.client_id()))
      << "the recovery client must not be on the crash schedule";
  struct Recover {
    static sim::Task<> Go(Index& index, nam::ClientContext& ctx,
                          uint64_t max_key) {
      for (uint64_t k = 0; k <= max_key; k += 2) {
        (void)co_await index.Lookup(ctx, k);
      }
      (void)co_await index.Scan(ctx, 0, btree::kInfinityKey, nullptr);
      (void)co_await index.GarbageCollect(ctx);
    }
  };
  sim::Spawn(cluster.simulator(), Recover::Go(index, rec, 2 * keys));
  cluster.simulator().Run();

  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
  if (const auto* auditor = cluster.fabric().auditor()) {
    EXPECT_TRUE(auditor->LockedWords().empty())
        << "orphaned locks survived the recovery sweep";
  }

  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  CrashOutcome outcome;
  outcome.ops = result.ops();
  outcome.dead_clients = result.dead_clients();
  outcome.lock_steals = result.lock_steals() + rec.lock_steals;
  outcome.sound = report.ok();
  outcome.report = report.ToString();
  return outcome;
}

std::vector<rdma::FabricConfig::CrashPoint> CrashSchedule() {
  // Kill three of the sixteen clients at very different protocol depths:
  // mid-descent early on, mid-run, and deep into the run.
  return {{1, 50}, {5, 500}, {9, 2000}};
}

TEST(CrashSweepTest, FineGrainedSurvivesClientCrashes) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  const auto healthy = RunCrashStress<FineGrainedIndex>(fc, 41);
  EXPECT_EQ(healthy.dead_clients, 0u);
  // A live holder is never robbed: leases only arm the steal path.
  EXPECT_EQ(healthy.lock_steals, 0u);
  EXPECT_TRUE(healthy.sound) << healthy.report;

  fc.crash_points = CrashSchedule();
  const auto crashed = RunCrashStress<FineGrainedIndex>(fc, 41);
  EXPECT_EQ(crashed.dead_clients, 3u);
  EXPECT_TRUE(crashed.sound) << crashed.report;
  // Thirteen survivors keep the closed loop going; losing 3/16 clients
  // (plus lease waits on their orphans) must not collapse throughput.
  EXPECT_GE(crashed.ops, healthy.ops / 2);
}

TEST(CrashSweepTest, HybridSurvivesClientCrashes) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  fc.rpc_timeout_ns = 200 * kMicrosecond;  // exercise the deadline registry
  const auto healthy = RunCrashStress<HybridIndex>(fc, 42);
  EXPECT_EQ(healthy.dead_clients, 0u);
  EXPECT_EQ(healthy.lock_steals, 0u);
  EXPECT_TRUE(healthy.sound) << healthy.report;

  fc.crash_points = CrashSchedule();
  const auto crashed = RunCrashStress<HybridIndex>(fc, 42);
  EXPECT_EQ(crashed.dead_clients, 3u);
  EXPECT_TRUE(crashed.sound) << crashed.report;
  EXPECT_GE(crashed.ops, healthy.ops / 2);
}

// The targeted version of the sweep: a client dies while *holding* a leaf
// lock and a waiter must lease-steal it, discard nothing (the holder's
// unlock write was dropped in flight), and proceed.
TEST(OrphanedLockTest, WaiterStealsLockFromDeadHolderAfterLease) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  fc.lock_lease_ns = 20 * kMicrosecond;
  Cluster cluster(fc, 1 << 20);
  cluster.fabric().SetNumClients(2);
  constexpr uint32_t kPage = 256;
  const rdma::RemotePtr ptr =
      cluster.memory_server(0).region().AllocateLocal(kPage);
  btree::PageView(cluster.memory_server(0).region().at(ptr.offset()), kPage)
      .InitLeaf(btree::kInfinityKey, 0);
  nam::ClientContext holder(0, cluster.fabric(), kPage, 1);
  nam::ClientContext stealer(1, cluster.fabric(), kPage, 2);

  struct Holder {
    static sim::Task<> Go(RemoteOps ops, rdma::RemotePtr ptr,
                          Status* unlock_status) {
      uint8_t* buf = ops.ctx().page_a();
      EXPECT_TRUE((co_await ops.LockPage(ptr, buf)).ok());
      // The compute process dies between acquiring the lock and writing
      // back: the unlock WRITE + FAA are dropped in flight.
      ops.fabric().KillClient(ops.ctx().client_id());
      *unlock_status = co_await ops.WriteUnlockPage(ptr, buf);
    }
  };
  struct Stealer {
    static sim::Task<> Go(RemoteOps ops, rdma::RemotePtr ptr,
                          Status* lock_status) {
      // Let the holder win the lock first.
      co_await sim::Delay(ops.fabric().simulator(), 5 * kMicrosecond);
      uint8_t* buf = ops.ctx().page_a();
      const PageReadResult lock = co_await ops.LockPage(ptr, buf);
      *lock_status = lock.status;
      if (lock.ok()) {
        btree::PageView view(buf, kPage);
        EXPECT_TRUE(view.LeafInsert(7, 7));
        EXPECT_TRUE((co_await ops.WriteUnlockPage(ptr, buf)).ok());
      }
    }
  };
  Status unlock_status;
  Status lock_status;
  sim::Spawn(cluster.simulator(),
             Holder::Go(RemoteOps(holder), ptr, &unlock_status));
  sim::Spawn(cluster.simulator(),
             Stealer::Go(RemoteOps(stealer), ptr, &lock_status));
  cluster.simulator().Run();

  EXPECT_TRUE(unlock_status.IsUnavailable()) << unlock_status.ToString();
  EXPECT_TRUE(lock_status.ok()) << lock_status.ToString();
  EXPECT_EQ(stealer.lock_steals, 1u);

  // The page ends up unlocked with the stealer's insert applied.
  btree::PageView view(
      cluster.memory_server(0).region().at(ptr.offset()), kPage);
  EXPECT_FALSE(btree::IsLocked(view.version_word()));
  EXPECT_GE(view.LeafFindLive(7), 0);

  // The steal is a *sanctioned* transition: the auditor saw the liveness
  // probe and must not report a protocol violation.
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
  if (const auto* auditor = cluster.fabric().auditor()) {
    EXPECT_EQ(auditor->lock_steals(), 1u);
    EXPECT_TRUE(auditor->LockedWords().empty());
  }
}

// Capped exponential backoff: a waiter spinning on a held lock re-polls a
// bounded number of times instead of hammering the word at a fixed rate.
TEST(BackoffTest, ExponentialBackoffBoundsSpinPolls) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  fc.lock_retry_ns = 1000;
  fc.lock_backoff_max_ns = 8000;
  Cluster cluster(fc, 1 << 20);
  cluster.fabric().SetNumClients(2);
  constexpr uint32_t kPage = 256;
  const rdma::RemotePtr ptr =
      cluster.memory_server(0).region().AllocateLocal(kPage);
  btree::PageView(cluster.memory_server(0).region().at(ptr.offset()), kPage)
      .InitLeaf(btree::kInfinityKey, 0);
  nam::ClientContext holder(0, cluster.fabric(), kPage, 1);
  nam::ClientContext reader(1, cluster.fabric(), kPage, 2);

  struct Hold {
    static sim::Task<> Go(RemoteOps ops, rdma::RemotePtr ptr, SimTime hold) {
      uint8_t* buf = ops.ctx().page_a();
      EXPECT_TRUE((co_await ops.LockPage(ptr, buf)).ok());
      co_await sim::Delay(ops.fabric().simulator(), hold);
      EXPECT_TRUE((co_await ops.WriteUnlockPage(ptr, buf)).ok());
    }
  };
  struct Observe {
    static sim::Task<> Go(RemoteOps ops, rdma::RemotePtr ptr) {
      co_await sim::Delay(ops.fabric().simulator(), 10 * kMicrosecond);
      uint8_t* buf = ops.ctx().page_a();
      EXPECT_TRUE((co_await ops.ReadPageUnlocked(ptr, buf)).ok());
    }
  };
  sim::Spawn(cluster.simulator(),
             Hold::Go(RemoteOps(holder), ptr, 100 * kMicrosecond));
  sim::Spawn(cluster.simulator(), Observe::Go(RemoteOps(reader), ptr));
  cluster.simulator().Run();

  // ~90us of spinning at a capped [4us, 8us) cadence: far fewer re-polls
  // than the ~90 a fixed 1us retry would issue, but more than a handful.
  EXPECT_GT(reader.backoff_rounds, 3u);
  EXPECT_GT(reader.lock_waits, 3u);
  EXPECT_LT(reader.lock_waits, 60u);
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
}

// Kill the writer after its k-th verb while it drives leaf splits: every
// insert must end OK or Unavailable (never a torn state), and after a
// recovery sweep the tree must inspect sound with all acknowledged
// inserts still readable.
class SplitCrashTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(VerbPoints, SplitCrashTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           12, 14, 17, 21, 26, 33, 50, 80));

TEST_P(SplitCrashTest, FineGrainedInsertCrashLeavesRecoverableTree) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  fc.lock_lease_ns = 30 * kMicrosecond;
  fc.crash_points = {{0, GetParam()}};
  Cluster cluster(fc, 1 << 20);
  cluster.fabric().SetNumClients(2);
  IndexConfig config;
  config.page_size = 256;
  config.head_node_interval = 0;
  FineGrainedIndex index(cluster, config);
  std::vector<KV> data;
  for (uint64_t i = 0; i < 20; ++i) data.push_back({i * 10, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());

  nam::ClientContext writer(0, cluster.fabric(), config.page_size, 1);
  nam::ClientContext rec(1, cluster.fabric(), config.page_size, 2);

  struct Writer {
    static sim::Task<> Go(FineGrainedIndex& index, nam::ClientContext& ctx,
                          uint64_t* acked) {
      // Sequential keys past the bulk range force repeated splits of the
      // rightmost leaf; the crash point lands in a different split phase
      // for every parameter value.
      for (uint64_t k = 0; k < 150; ++k) {
        const Status s = co_await index.Insert(ctx, 1000 + k, k);
        if (s.ok()) {
          (*acked)++;
        } else {
          EXPECT_TRUE(s.IsUnavailable())
              << "crash mid-insert must surface cleanly, got "
              << s.ToString();
        }
      }
    }
  };
  uint64_t acked = 0;
  sim::Spawn(cluster.simulator(), Writer::Go(index, writer, &acked));
  cluster.simulator().Run();
  EXPECT_FALSE(cluster.fabric().ClientAlive(0));

  struct Recover {
    static sim::Task<> Go(FineGrainedIndex& index, nam::ClientContext& ctx,
                          uint64_t min_live) {
      // Lookups across both key ranges cross every descent path and
      // lease-steal any orphaned inner or leaf lock the victim left.
      for (uint64_t k = 0; k < 200; k += 5) {
        (void)co_await index.Lookup(ctx, k);
      }
      for (uint64_t k = 1000; k < 1150; ++k) {
        (void)co_await index.Lookup(ctx, k);
      }
      const uint64_t live =
          co_await index.Scan(ctx, 0, btree::kInfinityKey, nullptr);
      // Every acknowledged insert survives the crash (an unacknowledged
      // one may too if it died after the entry write landed).
      EXPECT_GE(live, min_live);
      (void)co_await index.GarbageCollect(ctx);
    }
  };
  sim::Spawn(cluster.simulator(), Recover::Go(index, rec, 20 + acked));
  cluster.simulator().Run();

  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
  if (const auto* auditor = cluster.fabric().auditor()) {
    EXPECT_TRUE(auditor->LockedWords().empty())
        << "orphaned locks survived the recovery sweep";
  }
  const auto report = IndexInspector::Inspect(cluster.fabric(), index);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---------------------------------------------------------------------------
// Chain-boundary crashes: a client that dies while a doorbell-batched verb
// chain is in flight loses the not-yet-executed tail atomically
// (Fabric::PostChain drops it in one piece). Sweeping the kill time in
// sub-effect steps across the whole posting window must only ever expose
// the sanctioned intermediate states — never a torn one.
// ---------------------------------------------------------------------------

// The {page WRITE, unlock WRITE} chain of RemoteOps::WriteUnlockPage. Legal
// terminal states of the remote page:
//   untouched — died before the lock CAS landed: old image, version 0;
//   orphaned  — died mid-protocol: lock bit still set (content old or new),
//               reclaimable through the lease/steal path;
//   complete  — the unlock tail executed, so the content WRITE posted ahead
//               of it did too: new image, version = pre-lock + 2, holder
//               bits clear.
// "New content without the version bump" (a torn tail) must never appear.
TEST(ChainCrashTest, WriteUnlockChainDropsTailAtomically) {
  constexpr uint32_t kPage = 256;
  bool saw_untouched = false, saw_orphan = false, saw_complete = false;
  for (SimTime kill = 60; kill <= 21 * kMicrosecond; kill += 60) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 1;
    Cluster cluster(fc, 1 << 20);
    cluster.fabric().SetNumClients(1);
    const rdma::RemotePtr ptr =
        cluster.memory_server(0).region().AllocateLocal(kPage);
    btree::PageView(cluster.memory_server(0).region().at(ptr.offset()), kPage)
        .InitLeaf(btree::kInfinityKey, 0);
    nam::ClientContext writer(0, cluster.fabric(), kPage, 1);
    cluster.fabric().KillClient(0, kill);

    struct Writer {
      static sim::Task<> Go(RemoteOps ops, rdma::RemotePtr ptr) {
        uint8_t* buf = ops.ctx().page_a();
        const PageReadResult lock = co_await ops.LockPage(ptr, buf);
        if (!lock.ok()) co_return;
        btree::PageView view(buf, kPage);
        EXPECT_TRUE(view.LeafInsert(7, 7));
        (void)co_await ops.WriteUnlockPage(ptr, buf);
      }
    };
    sim::Spawn(cluster.simulator(), Writer::Go(RemoteOps(writer), ptr));
    cluster.simulator().Run();

    btree::PageView view(cluster.memory_server(0).region().at(ptr.offset()),
                         kPage);
    const uint64_t word = view.version_word();
    const bool has_insert = view.LeafFindLive(7) >= 0;
    if (word == 0) {
      saw_untouched = true;
      EXPECT_FALSE(has_insert)
          << "kill=" << kill << ": content landed without its version word";
    } else if (btree::IsLocked(word)) {
      saw_orphan = true;
      EXPECT_EQ(btree::VersionOf(word), 0u);
    } else {
      saw_complete = true;
      EXPECT_EQ(word, 2u)
          << "kill=" << kill << ": unlock must install a clean +2 version";
      EXPECT_TRUE(has_insert)
          << "kill=" << kill
          << ": unlock executed but the content WRITE chained before it "
             "did not — the dropped tail was not atomic";
    }
    EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
        << "kill=" << kill << ": "
        << cluster.fabric().CheckAuditClean().ToString();
    if (const auto* auditor = cluster.fabric().auditor()) {
      EXPECT_EQ(auditor->LockedWords().empty(), !btree::IsLocked(word));
    }
  }
  // The 60ns sweep step undercuts every inter-effect gap in the chain (the
  // floor is unsignaled_engine_ns = 120ns), so the sweep must have caught
  // the protocol in all three phases.
  EXPECT_TRUE(saw_untouched);
  EXPECT_TRUE(saw_orphan);
  EXPECT_TRUE(saw_complete);
}

// The 3-op split chain {sibling WRITE, page WRITE, unlock WRITE} of
// RemoteOps::WriteSiblingAndUnlockPage: chain members take effect in
// posting order, so whenever the left page's freshly published sibling
// pointer is visible, the sibling page it names must already be fully
// written. A crash may leak an unpublished sibling (written but never
// linked) or an orphaned lock — both recoverable — but never a published
// pointer to an unwritten page.
TEST(ChainCrashTest, SplitChainNeverPublishesUnwrittenSibling) {
  constexpr uint32_t kPage = 256;
  constexpr btree::Key kSep = 500;
  bool saw_unpublished = false, saw_midchain = false, saw_complete = false;
  for (SimTime kill = 60; kill <= 21 * kMicrosecond; kill += 60) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 1;
    Cluster cluster(fc, 1 << 20);
    cluster.fabric().SetNumClients(1);
    rdma::MemoryRegion& region = cluster.memory_server(0).region();
    const rdma::RemotePtr left = region.AllocateLocal(kPage);
    const rdma::RemotePtr sib = region.AllocateLocal(kPage);
    btree::PageView(region.at(left.offset()), kPage)
        .InitLeaf(btree::kInfinityKey, 0);
    nam::ClientContext writer(0, cluster.fabric(), kPage, 1);
    cluster.fabric().KillClient(0, kill);

    struct Writer {
      static sim::Task<> Go(RemoteOps ops, rdma::RemotePtr left,
                            rdma::RemotePtr sib) {
        uint8_t* buf = ops.ctx().page_a();
        const PageReadResult lock = co_await ops.LockPage(left, buf);
        if (!lock.ok()) co_return;
        // A split by hand: fence the locked left page at kSep and hang the
        // new right sibling (one live entry) off it.
        btree::PageView view(buf, kPage);
        view.header().high_key = kSep;
        view.header().right_sibling = sib.raw();
        std::vector<uint8_t> rimage(kPage, 0);
        btree::PageView rview(rimage.data(), kPage);
        rview.InitLeaf(btree::kInfinityKey, 0);
        EXPECT_TRUE(rview.LeafInsert(700, 7));
        (void)co_await ops.WriteSiblingAndUnlockPage(sib, rimage.data(), left,
                                                     buf);
      }
    };
    sim::Spawn(cluster.simulator(), Writer::Go(RemoteOps(writer), left, sib));
    cluster.simulator().Run();

    btree::PageView lview(region.at(left.offset()), kPage);
    btree::PageView sview(region.at(sib.offset()), kPage);
    const uint64_t word = lview.version_word();
    const bool published = lview.right_sibling() == sib.raw();
    // The sibling target starts zero-filled; the chained InitLeaf image is
    // the only write that can install the infinity fence.
    const bool sibling_written = sview.high_key() == btree::kInfinityKey;
    if (published) {
      // The load-bearing posting-order guarantee.
      EXPECT_TRUE(sibling_written)
          << "kill=" << kill
          << ": left page links a sibling that was never written";
      EXPECT_GE(sview.LeafFindLive(700), 0);
      EXPECT_EQ(lview.high_key(), kSep);
    }
    const bool complete = !btree::IsLocked(word) && word != 0;
    if (complete) {
      saw_complete = true;
      EXPECT_TRUE(published)
          << "kill=" << kill << ": unlocked without publishing the split";
      EXPECT_EQ(word, 2u);
    } else if (sibling_written) {
      saw_midchain = true;  // chain partially executed, tail dropped whole
    } else {
      saw_unpublished = true;  // nothing of the chain landed
    }
    EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
        << "kill=" << kill << ": "
        << cluster.fabric().CheckAuditClean().ToString();
  }
  EXPECT_TRUE(saw_unpublished);
  EXPECT_TRUE(saw_midchain);
  EXPECT_TRUE(saw_complete);
}

}  // namespace
}  // namespace namtree::index

// ---------------------------------------------------------------------------
// RPC deadlines: Fabric::Call must abandon an attempt at the timeout,
// resend up to rpc_max_retries times, and surface kTimedOut/kUnavailable.
// ---------------------------------------------------------------------------

namespace namtree::index {
namespace {

using nam::Cluster;

struct DelayedEcho {
  static sim::Task<> Handle(nam::MemoryServer& server, rdma::IncomingRpc rpc,
                            SimTime delay) {
    co_await sim::Delay(server.fabric().simulator(),
                        server.RequestOverhead() + delay);
    rdma::RpcResponse resp;
    resp.status = static_cast<uint16_t>(StatusCode::kOk);
    resp.arg0 = rpc.request.arg0 + 1;
    server.fabric().Respond(server.server_id(), rpc, std::move(resp));
  }
};

struct Caller {
  static sim::Task<> Go(rdma::Fabric& fabric, uint16_t service,
                        rdma::RpcResponse* out) {
    rdma::RpcRequest req;
    req.service = service;
    req.arg0 = 41;
    *out = co_await fabric.Call(0, 0, std::move(req));
  }
};

TEST(RpcTimeoutTest, SlowFirstAttemptIsRetriedAndLateReplyDropped) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 1;
  fc.rpc_timeout_ns = 50 * kMicrosecond;
  fc.rpc_max_retries = 2;
  Cluster cluster(fc, 1 << 20);
  cluster.fabric().SetNumClients(1);
  const uint16_t service = cluster.AllocateRpcService();
  uint64_t calls = 0;
  cluster.memory_server(0).RegisterHandler(
      service, [&calls](nam::MemoryServer& server, rdma::IncomingRpc rpc) {
        // First attempt stalls past the deadline; the resend is served
        // promptly. The stalled handler still responds eventually — into
        // an abandoned call registration.
        const SimTime delay =
            calls++ == 0 ? 400 * kMicrosecond : kMicrosecond;
        return DelayedEcho::Handle(server, std::move(rpc), delay);
      });

  rdma::RpcResponse out;
  sim::Spawn(cluster.simulator(), Caller::Go(cluster.fabric(), service, &out));
  cluster.simulator().Run();

  EXPECT_EQ(out.status, static_cast<uint16_t>(StatusCode::kOk));
  EXPECT_EQ(out.arg0, 42u);
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(cluster.fabric().metrics().Value("fabric.rpc_timeouts"), 1u);
  EXPECT_EQ(cluster.fabric().metrics().Value("fabric.dropped_responses"), 1u)
      << "the abandoned attempt's late reply must be charged and dropped";
}

TEST(RpcTimeoutTest, PersistentlySlowServiceSurfacesTimedOut) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 1;
  fc.rpc_timeout_ns = 20 * kMicrosecond;
  fc.rpc_max_retries = 2;
  Cluster cluster(fc, 1 << 20);
  cluster.fabric().SetNumClients(1);
  const uint16_t service = cluster.AllocateRpcService();
  cluster.memory_server(0).RegisterHandler(
      service, [](nam::MemoryServer& server, rdma::IncomingRpc rpc) {
        return DelayedEcho::Handle(server, std::move(rpc),
                                   300 * kMicrosecond);
      });

  rdma::RpcResponse out;
  sim::Spawn(cluster.simulator(), Caller::Go(cluster.fabric(), service, &out));
  cluster.simulator().Run();

  EXPECT_EQ(out.status, static_cast<uint16_t>(StatusCode::kTimedOut));
  // Initial attempt + rpc_max_retries resends, each abandoned.
  EXPECT_EQ(cluster.fabric().metrics().Value("fabric.rpc_timeouts"), 3u);
  EXPECT_EQ(cluster.fabric().metrics().Value("fabric.dropped_responses"), 3u);
}

TEST(RpcTimeoutTest, DeadCallerGetsUnavailableWithoutRetrying) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 1;
  fc.rpc_timeout_ns = 50 * kMicrosecond;
  Cluster cluster(fc, 1 << 20);
  cluster.fabric().SetNumClients(1);
  const uint16_t service = cluster.AllocateRpcService();
  cluster.memory_server(0).RegisterHandler(
      service, [](nam::MemoryServer& server, rdma::IncomingRpc rpc) {
        return DelayedEcho::Handle(server, std::move(rpc), kMicrosecond);
      });
  cluster.fabric().KillClient(0);

  rdma::RpcResponse out;
  sim::Spawn(cluster.simulator(), Caller::Go(cluster.fabric(), service, &out));
  cluster.simulator().Run();

  EXPECT_EQ(out.status, static_cast<uint16_t>(StatusCode::kUnavailable));
  EXPECT_EQ(cluster.fabric().metrics().Value("fabric.rpc_timeouts"), 0u);
}

}  // namespace
}  // namespace namtree::index

// ---------------------------------------------------------------------------
// Memory-server fault domain (docs/fault_model.md §Memory-server failures):
// server crash injection, replicated page writes, and client-driven
// failover. At R=1 a dead server's pages are simply gone — ops surface
// kUnavailable. At R>1 every page has R rank-striped replicas on distinct
// servers; readers promote the next live replica deterministically and
// disciplined writers publish primary + backups in one doorbell chain.
// ---------------------------------------------------------------------------

namespace namtree::index {
namespace {

using btree::KV;
using nam::Cluster;

// A reader whose page's primary server died is served from the rank-1
// replica — same bytes, no auditor complaint. The R=1 control: the same
// death makes the read fail with kUnavailable instead of hanging.
TEST(ServerLossTest, ReplicatedReadFailsOverToBackup) {
  constexpr uint32_t kPage = 256;
  for (const uint32_t replication : {1u, 2u}) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 2;
    fc.replication_factor = replication;
    Cluster cluster(fc, 1 << 20);
    cluster.fabric().SetNumClients(1);
    rdma::MemoryRegion& region = cluster.memory_server(0).region();
    const rdma::RemotePtr ptr = region.AllocateLocal(kPage);
    btree::PageView view(region.at(ptr.offset()), kPage);
    view.InitLeaf(btree::kInfinityKey, 0);
    EXPECT_TRUE(view.LeafInsert(42, 7));
    view.header().version_lock = 2;
    cluster.fabric().SyncReplicasFromPrimaries();
    cluster.fabric().KillServer(0);

    nam::ClientContext reader(0, cluster.fabric(), kPage, 1);
    struct Reader {
      static sim::Task<> Go(RemoteOps ops, rdma::RemotePtr ptr,
                            Status* status, uint64_t* version) {
        uint8_t* buf = ops.ctx().page_a();
        const PageReadResult read = co_await ops.ReadPageUnlocked(ptr, buf);
        *status = read.status;
        *version = read.version;
        if (read.ok()) {
          btree::PageView view(buf, kPage);
          EXPECT_GE(view.LeafFindLive(42), 0)
              << "promoted replica lost the bulk-loaded entry";
        }
      }
    };
    Status status;
    uint64_t version = 0;
    sim::Spawn(cluster.simulator(),
               Reader::Go(RemoteOps(reader), ptr, &status, &version));
    cluster.simulator().Run();

    if (replication > 1) {
      EXPECT_TRUE(status.ok()) << status.ToString();
      EXPECT_EQ(version, 2u) << "replica must carry the primary's version";
    } else {
      EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
    }
    EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
        << cluster.fabric().CheckAuditClean().ToString();
  }
}

// The primary dies between the lock CAS and the write-unlock publication.
// The publication aborts (kAborted — nothing of it landed), and the writer
// retries the whole op against the promoted replica: the backup word is
// always a clean unlocked version, so the retry locks it, applies the
// write, and the entry is durable on the replica.
TEST(ServerLossTest, WriterRetriesOnPromotedReplicaAfterPrimaryDeath) {
  constexpr uint32_t kPage = 256;
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  fc.replication_factor = 2;
  Cluster cluster(fc, 1 << 20);
  cluster.fabric().SetNumClients(1);
  rdma::MemoryRegion& region = cluster.memory_server(0).region();
  const rdma::RemotePtr ptr = region.AllocateLocal(kPage);
  btree::PageView(region.at(ptr.offset()), kPage)
      .InitLeaf(btree::kInfinityKey, 0);
  cluster.fabric().SyncReplicasFromPrimaries();
  nam::ClientContext writer(0, cluster.fabric(), kPage, 1);

  struct Writer {
    static sim::Task<> Go(RemoteOps ops, rdma::RemotePtr ptr,
                          Status* first_unlock, Status* retry_status) {
      uint8_t* buf = ops.ctx().page_a();
      EXPECT_TRUE((co_await ops.LockPage(ptr, buf)).ok());
      btree::PageView view(buf, kPage);
      EXPECT_TRUE(view.LeafInsert(7, 7));
      // The primary dies while the lock is held, before publication.
      ops.fabric().KillServer(ptr.server_id());
      *first_unlock = co_await ops.WriteUnlockPage(ptr, buf);
      if (!first_unlock->IsAborted()) co_return;
      // Op-level retry: re-read (promotes the replica), re-apply, publish.
      const PageReadResult lock = co_await ops.LockPage(ptr, buf);
      EXPECT_TRUE(lock.ok()) << lock.status.ToString();
      btree::PageView retry_view(buf, kPage);
      EXPECT_TRUE(retry_view.LeafInsert(7, 7));
      *retry_status = co_await ops.WriteUnlockPage(ptr, buf);
    }
  };
  Status first_unlock;
  Status retry_status;
  sim::Spawn(cluster.simulator(),
             Writer::Go(RemoteOps(writer), ptr, &first_unlock,
                        &retry_status));
  cluster.simulator().Run();

  EXPECT_TRUE(first_unlock.IsAborted()) << first_unlock.ToString();
  EXPECT_TRUE(retry_status.ok()) << retry_status.ToString();

  // The surviving replica holds the entry, unlocked, version advanced.
  const rdma::RemotePtr rep = cluster.fabric().ReplicaPtr(ptr, 1);
  btree::PageView rview(
      cluster.fabric().region(rep.server_id())->at(rep.offset()), kPage);
  EXPECT_FALSE(btree::IsLocked(rview.version_word()));
  EXPECT_GE(rview.LeafFindLive(7), 0);
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
  if (const auto* auditor = cluster.fabric().auditor()) {
    EXPECT_TRUE(auditor->LockedWords().empty());
  }
}

// Server crash points land at *effect* time, so a threshold can fall
// between two members of one split-publication chain. Sweeping the
// threshold across the whole chain: the op ends OK or kUnavailable (R=1),
// the auditor stays clean (it is taught the retraction), and whenever the
// left page's sibling pointer is visible in the (frozen) region, the
// sibling page it names was fully written first — posting order holds up
// to the drop point.
TEST(ServerKillChainTest, SplitChainServerDeathIsSanctioned) {
  constexpr uint32_t kPage = 256;
  constexpr btree::Key kSep = 500;
  for (uint64_t after_verbs = 1; after_verbs <= 12; ++after_verbs) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 1;
    fc.server_crash_points = {{0, after_verbs}};
    Cluster cluster(fc, 1 << 20);
    cluster.fabric().SetNumClients(1);
    rdma::MemoryRegion& region = cluster.memory_server(0).region();
    const rdma::RemotePtr left = region.AllocateLocal(kPage);
    const rdma::RemotePtr sib = region.AllocateLocal(kPage);
    btree::PageView(region.at(left.offset()), kPage)
        .InitLeaf(btree::kInfinityKey, 0);
    nam::ClientContext writer(0, cluster.fabric(), kPage, 1);

    struct Writer {
      static sim::Task<> Go(RemoteOps ops, rdma::RemotePtr left,
                            rdma::RemotePtr sib, Status* out) {
        uint8_t* buf = ops.ctx().page_a();
        const PageReadResult lock = co_await ops.LockPage(left, buf);
        if (!lock.ok()) {
          *out = lock.status;
          co_return;
        }
        btree::PageView view(buf, kPage);
        view.header().high_key = kSep;
        view.header().right_sibling = sib.raw();
        std::vector<uint8_t> rimage(kPage, 0);
        btree::PageView rview(rimage.data(), kPage);
        rview.InitLeaf(btree::kInfinityKey, 0);
        EXPECT_TRUE(rview.LeafInsert(700, 7));
        *out = co_await ops.WriteSiblingAndUnlockPage(sib, rimage.data(),
                                                      left, buf);
      }
    };
    Status status;
    sim::Spawn(cluster.simulator(),
               Writer::Go(RemoteOps(writer), left, sib, &status));
    cluster.simulator().Run();

    EXPECT_TRUE(status.ok() || status.IsUnavailable())
        << "after_verbs=" << after_verbs << ": " << status.ToString();
    EXPECT_FALSE(cluster.fabric().ServerAlive(0) && !status.ok())
        << "after_verbs=" << after_verbs
        << ": op failed but the server never died";

    // The region's frozen state still respects posting order.
    btree::PageView lview(region.at(left.offset()), kPage);
    btree::PageView sview(region.at(sib.offset()), kPage);
    if (lview.right_sibling() == sib.raw()) {
      EXPECT_EQ(sview.high_key(), btree::kInfinityKey)
          << "after_verbs=" << after_verbs
          << ": published pointer to an unwritten sibling";
    }
    EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
        << "after_verbs=" << after_verbs << ": "
        << cluster.fabric().CheckAuditClean().ToString();
  }
}

// A waiter lease-stealing an orphaned lock needs the holder's epoch word.
// When the server hosting that word is dead (and unreplicated), the
// liveness probe must not spin forever: after rpc_max_retries consecutive
// failed probes the op surfaces kUnavailable.
TEST(ServerLossTest, DeadEpochHostBoundsTheStealProbe) {
  constexpr uint32_t kPage = 256;
  rdma::FabricConfig fc;
  fc.num_memory_servers = 2;
  fc.lock_lease_ns = 20 * kMicrosecond;
  fc.rpc_max_retries = 2;
  Cluster cluster(fc, 1 << 20);
  cluster.fabric().SetNumClients(2);
  rdma::MemoryRegion& region = cluster.memory_server(0).region();
  const rdma::RemotePtr ptr = region.AllocateLocal(kPage);
  btree::PageView(region.at(ptr.offset()), kPage)
      .InitLeaf(btree::kInfinityKey, 0);
  // Client 1's epoch word lives on server 1 (client_id % num_servers).
  nam::ClientContext holder(1, cluster.fabric(), kPage, 1);
  nam::ClientContext stealer(0, cluster.fabric(), kPage, 2);

  struct Holder {
    static sim::Task<> Go(RemoteOps ops, rdma::RemotePtr ptr) {
      uint8_t* buf = ops.ctx().page_a();
      EXPECT_TRUE((co_await ops.LockPage(ptr, buf)).ok());
      // Die holding the lock — and take the epoch host down with us.
      ops.fabric().KillServer(1);
      ops.fabric().KillClient(ops.ctx().client_id());
      (void)co_await ops.WriteUnlockPage(ptr, buf);
    }
  };
  struct Stealer {
    static sim::Task<> Go(RemoteOps ops, rdma::RemotePtr ptr, Status* out) {
      co_await sim::Delay(ops.fabric().simulator(), 5 * kMicrosecond);
      uint8_t* buf = ops.ctx().page_a();
      *out = (co_await ops.LockPage(ptr, buf)).status;
    }
  };
  Status steal_status;
  sim::Spawn(cluster.simulator(), Holder::Go(RemoteOps(holder), ptr));
  sim::Spawn(cluster.simulator(),
             Stealer::Go(RemoteOps(stealer), ptr, &steal_status));
  const SimTime end = cluster.simulator().Run();

  EXPECT_TRUE(steal_status.IsUnavailable()) << steal_status.ToString();
  // Bounded: the probe gives up within a handful of lease periods instead
  // of re-arming forever.
  EXPECT_LT(end, 100 * kMillisecond);
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
}

// Degraded YCSB at R=1: killing one of four memory servers mid-run must
// fail fast — every fault-induced failure is kUnavailable (never a hang, a
// timeout loop, or a torn write the auditor would flag).
TEST(ServerLossTest, DegradedRunAtR1FailsOpsUnavailable) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  fc.lock_lease_ns = 100 * kMicrosecond;
  Cluster cluster(fc, 64 << 20);
  IndexConfig config;
  config.page_size = 256;
  config.head_node_interval = 4;
  FineGrainedIndex index(cluster, config);
  const uint64_t keys = 4000;
  ASSERT_TRUE(index.BulkLoad(MakeData(keys)).ok());
  cluster.fabric().KillServer(1, 8 * kMillisecond);

  ycsb::RunConfig run;
  run.num_clients = 16;
  run.warmup = 0;
  run.duration = 20 * kMillisecond;
  run.seed = 51;
  run.mix = StressMix();
  const auto result = ycsb::RunWorkload(cluster, index, keys, run);

  EXPECT_GT(result.ops(), 100u) << "survivable partitions must keep serving";
  EXPECT_GT(result.failures().unavailable, 0u)
      << "the dead server's key range never surfaced";
  // kUnavailable (and benign NotFound from the mix) are the only failure
  // modes: no timeouts, aborts, or mystery statuses.
  EXPECT_EQ(result.failures().timed_out, 0u);
  EXPECT_EQ(result.failures().aborted, 0u);
  EXPECT_EQ(result.failures().out_of_memory, 0u);
  EXPECT_EQ(result.failures().other, 0u);
  EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
      << cluster.fabric().CheckAuditClean().ToString();
}

// The acceptance run: at R=2 the same mid-run server death is invisible to
// correctness — zero fault-induced failures, clean audit, and a sound
// (replication-aware) inspection — across eight exploration seeds.
TEST(ServerLossTest, ReplicatedRunSurvivesServerDeathAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    rdma::FabricConfig fc;
    fc.num_memory_servers = 4;
    fc.replication_factor = 2;
    fc.lock_lease_ns = 100 * kMicrosecond;
    Cluster cluster(fc, 64 << 20);
    IndexConfig config;
    config.page_size = 256;
    config.head_node_interval = 4;
    FineGrainedIndex index(cluster, config);
    const uint64_t keys = 4000;
    ASSERT_TRUE(index.BulkLoad(MakeData(keys)).ok());
    cluster.fabric().KillServer(2, 8 * kMillisecond);

    ycsb::RunConfig run;
    run.num_clients = 16;
    run.warmup = 0;
    run.duration = 20 * kMillisecond;
    run.seed = seed;
    run.gc_interval = 6 * kMillisecond;
    run.mix = StressMix();
    const auto result = ycsb::RunWorkload(cluster, index, keys, run);

    EXPECT_GT(result.ops(), 100u) << "seed " << seed;
    // NotFound is workload noise (updates/deletes of absent keys); every
    // fault-induced failure class must be zero.
    EXPECT_EQ(result.failures().unavailable, 0u) << "seed " << seed;
    EXPECT_EQ(result.failures().timed_out, 0u) << "seed " << seed;
    EXPECT_EQ(result.failures().aborted, 0u) << "seed " << seed;
    EXPECT_EQ(result.failures().out_of_memory, 0u) << "seed " << seed;
    EXPECT_EQ(result.failures().other, 0u) << "seed " << seed;
    EXPECT_TRUE(cluster.fabric().CheckAuditClean().ok())
        << "seed " << seed << ": "
        << cluster.fabric().CheckAuditClean().ToString();

    const auto report = IndexInspector::Inspect(cluster.fabric(), index);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.ToString();
  }
}

// ServerTree (the RPC designs' server-side tree) surfaces region
// exhaustion as kResourceExhausted through the insert RPC instead of
// asserting the whole process away; reads keep working on the full tree.
TEST(ResourceExhaustionTest, CoarseGrainedInsertsSurfaceResourceExhausted) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 1;
  Cluster cluster(fc, 64 * 1024);  // tiny region: splits run it dry
  IndexConfig config;
  config.page_size = 256;
  CoarseGrainedIndex index(cluster, config);
  std::vector<KV> data;
  for (uint64_t i = 0; i < 1500; ++i) data.push_back({i * 4, i});
  ASSERT_TRUE(index.BulkLoad(data).ok());

  nam::ClientContext ctx(0, cluster.fabric(), config.page_size, 1);
  struct Driver {
    static sim::Task<> Go(CoarseGrainedIndex& index, nam::ClientContext& ctx,
                          uint64_t* ok_count, uint64_t* rex_count) {
      for (uint64_t k = 0; k < 6000; ++k) {
        const Status s = co_await index.Insert(ctx, k * 4 + 1, k);
        if (s.ok()) {
          (*ok_count)++;
        } else if (s.IsResourceExhausted()) {
          (*rex_count)++;
        } else {
          ADD_FAILURE() << "unexpected status " << s.ToString();
        }
      }
      // The tree stays fully readable after exhaustion.
      const LookupResult hit = co_await index.Lookup(ctx, 4);
      EXPECT_TRUE(hit.found);
    }
  };
  uint64_t ok_count = 0;
  uint64_t rex_count = 0;
  sim::Spawn(cluster.simulator(),
             Driver::Go(index, ctx, &ok_count, &rex_count));
  cluster.simulator().Run();
  EXPECT_GT(ok_count, 0u);
  EXPECT_GT(rex_count, 0u) << "the region never filled; shrink it";
}

}  // namespace
}  // namespace namtree::index
