// Reproduces Table 1: the symbols of the scalability analysis with the
// paper's example values (S=4, BW=50GB/s, P=1024B, D=100M, K=8B).

#include <cstdio>

#include "bench_common.h"
#include "model/scalability.h"

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  namtree::model::ModelParams p;
  p.num_servers = static_cast<double>(args.GetInt("servers", 4));
  p.data_size = args.GetDouble("data", 100e6);
  p.page_size = args.GetDouble("page", 1024);
  p.key_size = args.GetDouble("key", 8);
  p.bandwidth = args.GetDouble("bandwidth", 50e9);

  namtree::bench::PrintPreamble("Table 1", "Overview of Symbols", "");
  namtree::bench::PrintRow({"symbol", "description", "value"});
  namtree::bench::PrintRow({"S", "# of Memory Servers",
                            namtree::bench::Num(p.num_servers)});
  namtree::bench::PrintRow(
      {"BW", "Bandwidth per Memory Server (GB/s)",
       namtree::bench::Num(p.bandwidth / 1e9)});
  namtree::bench::PrintRow({"P", "Page Size of Index Nodes (Bytes)",
                            namtree::bench::Num(p.page_size)});
  namtree::bench::PrintRow({"D", "Data Size (# of tuples)",
                            namtree::bench::Num(p.data_size)});
  namtree::bench::PrintRow({"K", "Key Size (Bytes)",
                            namtree::bench::Num(p.key_size)});
  namtree::bench::PrintRow({"M=P/(3K)", "Fanout (per index node)",
                            namtree::bench::Num(p.Fanout())});
  namtree::bench::PrintRow({"L=D/M", "Leaves (# of nodes)",
                            namtree::bench::Num(p.Leaves())});
  namtree::bench::PrintRow({"H_FG", "Max. index height (FG, Unif./Skew)",
                            namtree::bench::Num(p.HeightFineGrained())});
  namtree::bench::PrintRow({"H_CG_U", "Max. index height (CG, Unif.)",
                            namtree::bench::Num(p.HeightCoarseUniform())});
  namtree::bench::PrintRow({"H_CG_S", "Max. index height (CG, Skew)",
                            namtree::bench::Num(p.HeightCoarseSkew())});
  return 0;
}
