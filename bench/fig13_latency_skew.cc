// Reproduces Figure 13 (Appendix A.2): mean per-query latency (seconds) of
// workloads A and B under skewed data placement, 20..240 clients.

#include "bench_common.h"

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  namtree::bench::RunLoadSweep(
      args, "Figure 13", "Latency for Workloads A and B (skewed data)",
      /*skewed_data=*/true, namtree::bench::SweepMetric::kLatency);
  return 0;
}
