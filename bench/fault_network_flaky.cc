// Flaky-network fault domain (docs/fault_model.md §8): sweep seeded verb
// loss/duplication rates across all four designs and measure what the
// retry-and-read-back discipline costs. Per cell: goodput (ops/s), failed
// operations split by status class, and the retry overhead (re-attempts,
// exhausted budgets, dedup-served RPC retransmissions, net fault events).
// The CI gate (BENCH_pr10.json): at the acceptance rates — 1% drops, 0.5%
// duplicates — every design completes the window with zero fault-caused
// failures and zero exhausted retry budgets.
//
//   ./build/bench/fault_network_flaky [--keys=20000] [--clients=16]
//                                     [--json=BENCH_pr10.json]

#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"

#include "index/coarse_grained.h"
#include "index/coarse_one_sided.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "nam/cluster.h"

using namespace namtree;
using namtree::bench::DesignKind;
using namtree::bench::DesignLabel;
using namtree::bench::JsonReport;
using namtree::bench::Num;
using namtree::bench::PrintRow;

namespace {

constexpr SimTime kWindow = 10 * kMillisecond;

struct FaultLevel {
  const char* name;
  double drop_prob;
  double dup_prob;
  SimTime delay_jitter_ns;
};

// "gate" is the acceptance-test operating point (tests/flaky_net_test.cc);
// "harsh" shows the discipline degrading gracefully, not a gated level.
constexpr FaultLevel kLevels[] = {
    {"clean", 0.0, 0.0, 0},
    {"mild", 0.001, 0.0005, 500},
    {"gate", 0.01, 0.005, 2 * kMicrosecond},
    {"harsh", 0.03, 0.015, 5 * kMicrosecond},
};

constexpr DesignKind kDesigns[] = {
    DesignKind::kCoarse,
    DesignKind::kCoarseOneSided,
    DesignKind::kFine,
    DesignKind::kHybrid,
};

struct Cell {
  ycsb::RunResult result;
  uint64_t retry_attempts = 0;
  uint64_t retry_exhausted = 0;
  uint64_t dropped_verbs = 0;
  uint64_t dropped_completions = 0;
  uint64_t duplicates = 0;
  uint64_t dedup_hits = 0;
  bool audit_clean = false;
};

std::unique_ptr<index::DistributedIndex> MakeIndex(DesignKind design,
                                                   nam::Cluster& cluster,
                                                   const index::IndexConfig& c) {
  switch (design) {
    case DesignKind::kCoarse:
      return std::make_unique<index::CoarseGrainedIndex>(cluster, c);
    case DesignKind::kCoarseOneSided:
      return std::make_unique<index::CoarseOneSidedIndex>(cluster, c);
    case DesignKind::kFine:
      return std::make_unique<index::FineGrainedIndex>(cluster, c);
    case DesignKind::kHybrid:
      return std::make_unique<index::HybridIndex>(cluster, c);
  }
  std::abort();
}

Cell RunCell(DesignKind design, const FaultLevel& level, uint64_t keys,
             uint32_t clients) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = 4;
  fc.drop_prob = level.drop_prob;
  fc.dup_prob = level.dup_prob;
  fc.delay_jitter_ns = level.delay_jitter_ns;
  fc.net_fault_seed = 0x51ED270Bu;
  fc.rpc_max_retries = 6;
  nam::Cluster cluster(fc, 256ull << 20);

  index::IndexConfig ic;
  ic.page_size = 1024;
  auto index = MakeIndex(design, cluster, ic);
  const auto data = ycsb::GenerateDataset(keys);
  if (!index->BulkLoad(data).ok()) std::abort();

  ycsb::RunConfig run;
  run.num_clients = clients;
  run.mix = ycsb::WorkloadA();  // 50/50 lookup-update: every op can retry
  run.warmup = 0;
  run.duration = kWindow;
  run.seed = 7;

  Cell cell;
  cell.result = ycsb::RunWorkload(cluster, *index, keys, run);
  const auto& m = cluster.fabric().metrics();
  cell.retry_attempts = m.Value("retry.attempts");
  cell.retry_exhausted = m.Value("retry.exhausted");
  cell.dropped_verbs = m.Value("fabric.net.dropped_verbs");
  cell.dropped_completions = m.Value("fabric.net.dropped_completions");
  cell.duplicates = m.Value("fabric.net.duplicates");
  cell.dedup_hits = m.Value("fabric.net.rpc_dedup_hits");
  cell.audit_clean = cluster.fabric().CheckAuditClean().ok();
  return cell;
}

/// Failures the network faults can cause; NotFound is workload noise.
uint64_t FaultFailedOps(const ycsb::RunResult& r) {
  return r.failures().total() - r.failures().not_found;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 20000));
  const uint32_t clients = static_cast<uint32_t>(args.GetInt("clients", 16));

  namtree::bench::PrintPreamble(
      "Flaky network: loss/dup rate vs goodput and retry overhead",
      "All designs, YCSB A under seeded lossy/dup/delayed verb injection",
      Num(static_cast<double>(keys)) + " keys, " + Num(clients) +
          " clients, " + Num(kWindow / 1e6) + "ms window, retries on");

  JsonReport report;
  report.Set("bench", std::string("fault_network_flaky"));
  report.Set("config.keys", keys);
  report.Set("config.clients", static_cast<uint64_t>(clients));
  report.Set("config.rpc_max_retries", static_cast<uint64_t>(6));

  bool gate_ok = true;
  for (DesignKind design : kDesigns) {
    std::printf("\n# subplot: %s\n", DesignLabel(design));
    PrintRow({"faults", "ops_per_s", "fault_failed_ops", "timed_out",
              "retry_attempts", "retry_exhausted", "dropped_verbs",
              "dropped_completions", "duplicates", "rpc_dedup_hits",
              "audit"});
    for (const FaultLevel& level : kLevels) {
      const Cell cell = RunCell(design, level, keys, clients);
      const auto& r = cell.result;
      PrintRow({level.name, Num(r.ops_per_sec),
                Num(static_cast<double>(FaultFailedOps(r))),
                Num(static_cast<double>(r.failures().timed_out)),
                Num(static_cast<double>(cell.retry_attempts)),
                Num(static_cast<double>(cell.retry_exhausted)),
                Num(static_cast<double>(cell.dropped_verbs)),
                Num(static_cast<double>(cell.dropped_completions)),
                Num(static_cast<double>(cell.duplicates)),
                Num(static_cast<double>(cell.dedup_hits)),
                cell.audit_clean ? "clean" : "VIOLATION"});
      const std::string key =
          std::string(DesignLabel(design)) + "." + level.name;
      report.Set(key + ".ops_per_s", r.ops_per_sec);
      report.Set(key + ".fault_failed_ops", FaultFailedOps(r));
      report.Set(key + ".timed_out", r.failures().timed_out);
      report.Set(key + ".retry_attempts", cell.retry_attempts);
      report.Set(key + ".retry_exhausted", cell.retry_exhausted);
      report.Set(key + ".dropped_verbs", cell.dropped_verbs);
      report.Set(key + ".dropped_completions", cell.dropped_completions);
      report.Set(key + ".duplicates", cell.duplicates);
      report.Set(key + ".rpc_dedup_hits", cell.dedup_hits);
      report.Set(key + ".audit_clean",
                 static_cast<uint64_t>(cell.audit_clean ? 1 : 0));
      // The gate: at and below the acceptance rates, the retry discipline
      // absorbs every injected fault — no failed ops, no exhausted budget.
      if (level.drop_prob <= 0.01) {
        if (FaultFailedOps(r) != 0 || cell.retry_exhausted != 0 ||
            !cell.audit_clean) {
          gate_ok = false;
        }
      }
    }
  }
  report.Set("gate.zero_fault_failures_at_1pct_drop",
             static_cast<uint64_t>(gate_ok ? 1 : 0));
  std::printf("\n# gate: %s\n", gate_ok ? "PASS" : "FAIL");

  if (!namtree::bench::MaybeWriteJson(args, report)) return 1;
  return gate_ok ? 0 : 1;
}
