// Ablation for the index-node page size P (the paper fixes P=1024, Table 1):
// point- and range-query throughput of all three designs for P in
// {512, 1024, 2048, 4096}. Larger pages flatten the tree (fewer round trips
// / node visits) but cost more bandwidth per access.

#include <cstdio>

#include "bench_common.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::MakeExperiment;
using namtree::bench::Num;
using namtree::bench::PrintRow;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));

  namtree::bench::PrintPreamble(
      "Ablation: page size", "Index node size vs throughput",
      Num(static_cast<double>(keys)) + " keys, 120 clients, uniform data");

  struct Subplot {
    const char* label;
    namtree::ycsb::WorkloadMix mix;
  };
  const Subplot subplots[] = {
      {"point_queries", namtree::ycsb::WorkloadA()},
      {"range_sel_0.01", namtree::ycsb::WorkloadB(0.01)},
  };

  for (const Subplot& subplot : subplots) {
    std::printf("\n# subplot: %s\n", subplot.label);
    PrintRow({"page_size", "coarse-grained", "fine-grained", "hybrid"});
    for (uint32_t page : {512u, 1024u, 2048u, 4096u}) {
      std::vector<std::string> row = {Num(page)};
      for (DesignKind design :
           {DesignKind::kCoarse, DesignKind::kFine, DesignKind::kHybrid}) {
        ExperimentConfig config;
        config.design = design;
        config.num_keys = keys;
        config.page_size = page;
        auto exp = MakeExperiment(config);
        namtree::ycsb::RunConfig run;
        run.num_clients = 120;
        run.mix = subplot.mix;
        run.duration = namtree::bench::DurationFor(subplot.mix, keys, run.num_clients);
        run.warmup = run.duration / 10;
        row.push_back(Num(exp.Run(run).ops_per_sec));
      }
      PrintRow(row);
    }
  }
  return 0;
}
