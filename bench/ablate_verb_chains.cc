// Ablation for doorbell-batched verb chains (Fabric::PostChain): how many
// signaled verbs and doorbells a fine-grained insert costs with chaining on
// vs off, and what the chained write paths buy in Figure-12-style insert
// throughput. `--json <path>` additionally writes the machine-readable
// report the CI smoke-bench archives (BENCH_pr3.json).

#include <cstdio>

#include "bench_common.h"
#include "rdma/fabric.h"
#include "sim/task.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::JsonReport;
using namtree::bench::MakeExperiment;
using namtree::bench::Num;
using namtree::bench::PrintRow;

namespace {

// Right-edge appends: every insert lands on the rightmost leaf, so the run
// is split-heavy — the workload shape the chained split publication
// (WriteSiblingAndUnlockPage) is built for.
// namtree-lint: safe-coro-ref(referents live in RunVerbPhase's frame, which blocks on simulator.Run() until this task finishes)
namtree::sim::Task<> InsertLoop(namtree::index::DistributedIndex& index,
                                namtree::nam::ClientContext& ctx,
                                namtree::btree::Key first_key,
                                uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    (void)co_await index.Insert(ctx, first_key + i * namtree::ycsb::kKeyStride,
                                i);
  }
}

struct VerbPhaseResult {
  double signaled_per_op = 0;
  double unsignaled_per_op = 0;
  double doorbells_per_op = 0;
};

/// Single-client sequential inserts against a fine-grained index with the
/// inner-node cache warm, counting fabric-level verbs per insert. The small
/// page size keeps leaves shallow so splits — where chaining saves the
/// most — happen every few inserts, as in the paper's insert-heavy tail.
VerbPhaseResult RunVerbPhase(bool chained, uint64_t keys, uint64_t inserts,
                             uint32_t page_size, uint32_t cache_pages,
                             uint32_t head_interval) {
  ExperimentConfig config;
  config.design = DesignKind::kFine;
  config.num_keys = keys;
  config.page_size = page_size;
  config.head_node_interval = head_interval;
  config.verb_chaining = chained;
  config.client_cache_pages = cache_pages;
  config.client_cache_ttl = 0;  // NodeCache treats 0 as no expiry
  namtree::bench::Experiment exp = MakeExperiment(config);
  namtree::rdma::Fabric& fabric = exp.cluster->fabric();
  namtree::sim::Simulator& simulator = exp.cluster->simulator();
  fabric.SetNumClients(1);
  namtree::nam::ClientContext ctx(0, fabric, exp.index->page_size(), 7);

  // Warm the traversal cache (and take the first splits) off the books.
  const namtree::btree::Key edge = keys * namtree::ycsb::kKeyStride;
  const uint64_t warmup = inserts / 4 + 1;
  namtree::sim::Spawn(simulator, InsertLoop(*exp.index, ctx, edge, warmup));
  simulator.Run();
  fabric.ResetStats();

  namtree::sim::Spawn(
      simulator,
      InsertLoop(*exp.index, ctx,
                 edge + warmup * namtree::ycsb::kKeyStride, inserts));
  simulator.Run();

  VerbPhaseResult r;
  const double n = static_cast<double>(inserts);
  r.signaled_per_op = static_cast<double>(fabric.metrics().Value("fabric.signaled_verbs")) / n;
  r.unsignaled_per_op = static_cast<double>(fabric.metrics().Value("fabric.unsignaled_verbs")) / n;
  r.doorbells_per_op = static_cast<double>(fabric.metrics().Value("fabric.doorbells")) / n;
  return r;
}

/// Figure-12-style closed-loop insert workload (D: 50% inserts) on the
/// fine-grained design at paper page size, chained vs unchained.
double RunThroughputPhase(bool chained, uint64_t keys, uint32_t clients) {
  ExperimentConfig config;
  config.design = DesignKind::kFine;
  config.num_keys = keys;
  config.verb_chaining = chained;
  namtree::bench::Experiment exp = MakeExperiment(config);
  namtree::ycsb::RunConfig run;
  run.num_clients = clients;
  run.mix = namtree::ycsb::WorkloadD();
  run.duration = namtree::bench::DurationFor(run.mix, keys, clients);
  run.warmup = run.duration / 10;
  return exp.Run(run).ops_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 20000));
  const uint64_t inserts =
      static_cast<uint64_t>(args.GetInt("inserts", 4000));
  // Verb-phase defaults: small pages make the append run split-heavy
  // (where chains collapse 3 signaled verbs into 1) and the warm A.4
  // inner-node cache keeps traversal reads — identical in both modes —
  // from diluting the ratio.
  const uint32_t page_size =
      static_cast<uint32_t>(args.GetInt("page", 128));
  const uint32_t cache_pages =
      static_cast<uint32_t>(args.GetInt("cache", 1 << 16));
  const uint32_t head_interval =
      static_cast<uint32_t>(args.GetInt("head", 16));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 120));

  namtree::bench::PrintPreamble(
      "Ablation: verb chains",
      "Doorbell-batched write+unlock and split chains (PostChain)",
      Num(static_cast<double>(keys)) + " keys; verb phase: sequential FG "
          "inserts, page=" + Num(page_size) + ", warm inner-node cache; "
          "throughput phase: workload D, " + Num(clients) + " clients, "
          "page=1024");

  std::printf("\n# subplot: signaled_verbs_per_insert\n");
  PrintRow({"mode", "signaled_per_op", "unsignaled_per_op",
            "doorbells_per_op"});
  const VerbPhaseResult unchained =
      RunVerbPhase(false, keys, inserts, page_size, cache_pages,
                   head_interval);
  PrintRow({"unchained", Num(unchained.signaled_per_op),
            Num(unchained.unsignaled_per_op),
            Num(unchained.doorbells_per_op)});
  const VerbPhaseResult chained =
      RunVerbPhase(true, keys, inserts, page_size, cache_pages,
                   head_interval);
  PrintRow({"chained", Num(chained.signaled_per_op),
            Num(chained.unsignaled_per_op), Num(chained.doorbells_per_op)});
  const double signaled_reduction =
      unchained.signaled_per_op > 0
          ? 100.0 * (1.0 - chained.signaled_per_op / unchained.signaled_per_op)
          : 0;
  const double doorbell_reduction =
      unchained.doorbells_per_op > 0
          ? 100.0 * (1.0 - chained.doorbells_per_op / unchained.doorbells_per_op)
          : 0;
  std::printf("# signaled verbs per insert: %.3f -> %.3f (-%.1f%%)\n",
              unchained.signaled_per_op, chained.signaled_per_op,
              signaled_reduction);

  std::printf("\n# subplot: workload_d_throughput\n");
  PrintRow({"mode", "ops_per_s"});
  const double tput_unchained = RunThroughputPhase(false, keys, clients);
  PrintRow({"unchained", Num(tput_unchained)});
  const double tput_chained = RunThroughputPhase(true, keys, clients);
  PrintRow({"chained", Num(tput_chained)});
  const double speedup =
      tput_unchained > 0 ? tput_chained / tput_unchained : 0;
  std::printf("# workload D throughput: x%.3f\n", speedup);

  JsonReport report;
  report.Set("bench", std::string("ablate_verb_chains"));
  report.Set("config.keys", keys);
  report.Set("config.inserts", inserts);
  report.Set("config.verb_phase_page_size", static_cast<uint64_t>(page_size));
  report.Set("config.verb_phase_cache_pages",
             static_cast<uint64_t>(cache_pages));
  report.Set("config.throughput_clients", static_cast<uint64_t>(clients));
  report.Set("unchained.signaled_per_op", unchained.signaled_per_op);
  report.Set("unchained.unsignaled_per_op", unchained.unsignaled_per_op);
  report.Set("unchained.doorbells_per_op", unchained.doorbells_per_op);
  report.Set("unchained.workload_d_ops_per_s", tput_unchained);
  report.Set("chained.signaled_per_op", chained.signaled_per_op);
  report.Set("chained.unsignaled_per_op", chained.unsignaled_per_op);
  report.Set("chained.doorbells_per_op", chained.doorbells_per_op);
  report.Set("chained.workload_d_ops_per_s", tput_chained);
  report.Set("signaled_verbs_reduction_percent", signaled_reduction);
  report.Set("doorbell_reduction_percent", doorbell_reduction);
  report.Set("workload_d_speedup", speedup);
  if (!namtree::bench::MaybeWriteJson(args, report)) return 1;
  return 0;
}
