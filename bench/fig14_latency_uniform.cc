// Reproduces Figure 14 (Appendix A.2): mean per-query latency (seconds) of
// workloads A and B under uniform data placement, 20..240 clients.

#include "bench_common.h"

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  namtree::bench::RunLoadSweep(
      args, "Figure 14", "Latency for Workloads A and B (uniform data)",
      /*skewed_data=*/false, namtree::bench::SweepMetric::kLatency);
  return 0;
}
