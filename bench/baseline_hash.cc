// Baseline comparison: the one-sided distributed hash index (the related
// work of §8: RDMA key-value stores) against the tree designs. Hash wins
// point lookups — one small READ instead of a traversal — which is exactly
// why [44] used one for primary indexes; it cannot serve range queries at
// all, which is why this paper builds trees.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "index/hash_index.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::MakeExperiment;
using namtree::bench::Num;
using namtree::bench::PrintRow;

namespace {

struct Measurement {
  double point_ops = 0;
  double point_latency_us = 0;
  double insert_ops = 0;
  double range_ops = 0;  // 0 when unsupported
};

Measurement MeasureIndex(namtree::nam::Cluster& cluster,
                         namtree::index::DistributedIndex& index,
                         uint64_t keys, uint32_t clients, bool ranges) {
  Measurement m;
  {
    namtree::ycsb::RunConfig run;
    run.num_clients = clients;
    run.mix = namtree::ycsb::WorkloadA();
    run.duration = 20 * namtree::kMillisecond;
    run.warmup = 2 * namtree::kMillisecond;
    const auto result = namtree::ycsb::RunWorkload(cluster, index, keys, run);
    m.point_ops = result.ops_per_sec;
    m.point_latency_us = result.latency.mean() / 1000.0;
  }
  {
    namtree::ycsb::RunConfig run;
    run.num_clients = clients;
    run.mix = namtree::ycsb::WorkloadD();
    run.duration = 20 * namtree::kMillisecond;
    run.warmup = 2 * namtree::kMillisecond;
    m.insert_ops =
        namtree::ycsb::RunWorkload(cluster, index, keys, run).ops_per_sec;
  }
  if (ranges) {
    namtree::ycsb::RunConfig run;
    run.num_clients = clients;
    run.mix = namtree::ycsb::WorkloadB(0.001);
    run.duration =
        namtree::bench::DurationFor(run.mix, keys, run.num_clients);
    run.warmup = run.duration / 10;
    m.range_ops =
        namtree::ycsb::RunWorkload(cluster, index, keys, run).ops_per_sec;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 240));

  namtree::bench::PrintPreamble(
      "Baseline: one-sided hash index vs tree designs",
      "point / insert throughput, point latency, range capability",
      Num(static_cast<double>(keys)) + " keys, " + Num(clients) +
          " clients, uniform data");
  PrintRow({"index", "point_ops", "point_lat_us", "insert_mix_ops",
            "range_sel_0.001_ops"});

  // Hash baseline.
  {
    namtree::rdma::FabricConfig fc;
    const uint64_t region_bytes =
        keys * 128ull / 2 + (64ull << 20);  // bucket arrays + overflow room
    namtree::nam::Cluster cluster(fc, region_bytes);
    namtree::index::DistributedHashIndex index(cluster,
                                               namtree::index::IndexConfig{});
    const auto data = namtree::ycsb::GenerateDataset(keys);
    if (!index.BulkLoad(data).ok()) return 1;
    const auto m = MeasureIndex(cluster, index, keys, clients,
                                /*ranges=*/false);
    PrintRow({"hash-baseline", Num(m.point_ops), Num(m.point_latency_us),
              Num(m.insert_ops), "unsupported"});
  }

  for (DesignKind design : {DesignKind::kCoarse, DesignKind::kFine,
                            DesignKind::kHybrid}) {
    ExperimentConfig config;
    config.design = design;
    config.num_keys = keys;
    auto exp = MakeExperiment(config);
    const auto m = MeasureIndex(*exp.cluster, *exp.index, keys, clients,
                                /*ranges=*/true);
    PrintRow({namtree::bench::DesignLabel(design), Num(m.point_ops),
              Num(m.point_latency_us), Num(m.insert_ops), Num(m.range_ops)});
  }
  return 0;
}
