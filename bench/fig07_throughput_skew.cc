// Reproduces Figure 7: throughput of workloads A (point queries) and B
// (range queries, sel = 0.001/0.01/0.1) under attribute-value-skewed data
// placement, for 20..240 closed-loop clients on 4 memory servers.

#include "bench_common.h"

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  namtree::bench::RunLoadSweep(
      args, "Figure 7",
      "Throughput for Workloads A and B (skewed data)", /*skewed_data=*/true,
      namtree::bench::SweepMetric::kThroughput);
  return 0;
}
