#ifndef NAMTREE_BENCH_BENCH_COMMON_H_
#define NAMTREE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/arg_parser.h"
#include "common/metrics.h"
#include "index/index.h"
#include "nam/cluster.h"
#include "ycsb/runner.h"
#include "ycsb/workload.h"

namespace namtree::bench {

/// Which of the paper's three designs to instantiate.
enum class DesignKind {
  kCoarse,          ///< Design 1, §3: coarse-grained / two-sided
  kFine,            ///< Design 2, §4: fine-grained / one-sided
  kHybrid,          ///< Design 3, §5
  kCoarseOneSided,  ///< Design 4: the §2.2 matrix corner the paper skips
};

const char* DesignLabel(DesignKind kind);

/// One fully assembled experiment: simulator + fabric + memory servers +
/// bulk-loaded index.
struct Experiment {
  std::unique_ptr<nam::Cluster> cluster;
  std::unique_ptr<index::DistributedIndex> index;
  uint64_t num_keys = 0;

  ycsb::RunResult Run(const ycsb::RunConfig& config) {
    return ycsb::RunWorkload(*cluster, *index, num_keys, config);
  }
};

/// Knobs of one experiment cell. Defaults reproduce the paper's §6.1 setup
/// (4 memory servers on 2 machines, range partitioning, 1KB pages) at the
/// bench default scale.
struct ExperimentConfig {
  DesignKind design = DesignKind::kCoarse;
  uint32_t num_memory_servers = 4;
  uint64_t num_keys = 1'000'000;
  /// Attribute-value skew: assign 80% of the data to memory server 0 and
  /// spread the rest (paper: 80/12/5/3 on 4 servers).
  bool skewed_data = false;
  index::PartitionKind partition = index::PartitionKind::kRange;
  uint32_t page_size = 1024;
  uint32_t head_node_interval = 16;
  bool colocate = false;
  uint64_t region_bytes = 0;  ///< 0 = sized automatically from num_keys
  uint32_t workers_per_server = 0;  ///< 0 = FabricConfig default
  /// Doorbell-batched verb chains on the one-sided write paths
  /// (FabricConfig::verb_chaining); false = individually signaled verbs.
  bool verb_chaining = true;
  /// Per-client inner-node cache (IndexConfig::client_cache_pages / _ttl).
  uint32_t client_cache_pages = 0;
  SimTime client_cache_ttl = 2 * kMillisecond;
  /// One-RTT speculative descent (IndexConfig::speculative_descent;
  /// one-sided designs, needs client_cache_pages > 0).
  bool speculative_descent = false;
  /// In-flight read combining (FabricConfig::read_combining).
  bool read_combining = false;
};

/// The paper's §6.1 skewed placement, generalised to S servers:
/// {0.80, 0.12, 0.05, 0.03} for S=4; for other S, 80% on server 0 and the
/// remainder split geometrically.
std::vector<double> SkewWeights(uint32_t servers);

/// Builds the cluster and bulk-loads the chosen design over the standard
/// YCSB dataset (GenerateDataset). Aborts on failure.
Experiment MakeExperiment(const ExperimentConfig& config);

/// The client counts of the paper's load sweeps (Figures 7-9, 12-14),
/// scaled down by `scale` (>=1) for quick runs.
std::vector<uint32_t> ClientSweep(int64_t scale = 1);

/// Picks a virtual measurement window long enough for every closed-loop
/// client to complete a few operations at the workload's per-operation cost
/// and the given data scale.
SimTime DurationFor(const ycsb::WorkloadMix& mix, uint64_t num_keys,
                    uint32_t clients);

/// What a load sweep reports per cell.
enum class SweepMetric {
  kThroughput,  ///< lookups/s (Figures 7, 8, 12)
  kBandwidth,   ///< aggregated memory-server GB/s (Figure 9)
  kLatency,     ///< mean per-op latency in seconds (Figures 13, 14)
};

/// Runs the §6.1 load sweep — workloads A and B(0.001/0.01/0.1), client
/// counts 20..240, all three designs — and prints one table per subplot.
/// Reused by Figures 7/8 (throughput), 9 (network utilisation) and 13/14
/// (latency). Flags: --keys, --scale (thins the client sweep), --designs.
void RunLoadSweep(const ArgParser& args, const std::string& figure,
                  const std::string& title, bool skewed_data,
                  SweepMetric metric);

/// TSV output helpers: every figure bench prints `# figure`, `# note`
/// comment lines, then one header row and data rows.
void PrintPreamble(const std::string& figure, const std::string& title,
                   const std::string& note);
void PrintRow(const std::vector<std::string>& cells);
std::string Num(double v);

/// Insertion-ordered JSON object for machine-readable bench output.
/// Dotted keys nest: Set("chained.signaled_per_op", v) serialises as
/// {"chained": {"signaled_per_op": v}}; top-level and nested keys keep
/// first-insertion order.
class JsonReport {
 public:
  void Set(const std::string& key, double value);
  void Set(const std::string& key, uint64_t value);
  void Set(const std::string& key, const std::string& value);

  std::string ToString() const;

  /// Writes ToString() (plus a trailing newline) to `path`. Returns false
  /// with a stderr note on I/O failure.
  bool WriteTo(const std::string& path) const;

 private:
  /// Dotted key paths mapped to pre-rendered JSON literals, in insertion
  /// order.
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Emits every cell of a run's registry window into `report`, generically:
/// no per-counter code, whatever families the run touched appear. Keys are
/// "<prefix>.<family>" for unlabeled cells and
/// "<prefix>.<family>.<k>=<v>[,<k>=<v>...]" for labeled ones (label order =
/// registration order); histogram cells fan out into ".count", ".mean_ns"
/// and ".p99_ns" leaves. Families whose window moved nothing still appear
/// (value 0), so the emitted key set is a stable schema for CI to diff.
void EmitMetrics(const metrics::Delta& counters, JsonReport& report,
                 const std::string& prefix = "metrics");

/// Writes `report` to the file named by `--json <path>` when the flag is
/// present (the standard machine-readable side channel of the TSV benches).
/// Returns false only when the flag was given and the write failed.
bool MaybeWriteJson(const ArgParser& args, const JsonReport& report);

}  // namespace namtree::bench

#endif  // NAMTREE_BENCH_BENCH_COMMON_H_
