// Google-benchmark microbenchmarks for the simulation substrate itself:
// raw event throughput of the discrete-event core and the cost of simulated
// verbs. These bound how much virtual-time experimentation the harness can
// do per wall-clock second.

#include <benchmark/benchmark.h>

#include "nam/cluster.h"
#include "rdma/fabric.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace namtree {
namespace {

sim::Task<> DelayLoop(sim::Simulator& s, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim::Delay(s, 10);
  }
}

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    for (int c = 0; c < 16; ++c) sim::Spawn(s, DelayLoop(s, 1000));
    s.Run();
    benchmark::DoNotOptimize(s.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

sim::Task<> ReadLoop(rdma::Fabric& fabric, rdma::RemotePtr ptr, int n,
                     uint32_t len) {
  std::vector<uint8_t> buf(len);
  for (int i = 0; i < n; ++i) {
    co_await fabric.Read(0, ptr, buf.data(), len);
  }
}

void BM_SimulatedRead(benchmark::State& state) {
  const uint32_t len = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    rdma::FabricConfig config;
    config.num_memory_servers = 1;
    nam::Cluster cluster(config, 1 << 20);
    rdma::RemotePtr ptr =
        cluster.memory_server(0).region().AllocateLocal(len);
    sim::Spawn(cluster.simulator(),
               ReadLoop(cluster.fabric(), ptr, 1000, len));
    cluster.simulator().Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.SetBytesProcessed(state.iterations() * 1000 * len);
}
BENCHMARK(BM_SimulatedRead)->Arg(64)->Arg(1024)->Arg(4096);

sim::Task<> CasLoop(rdma::Fabric& fabric, rdma::RemotePtr ptr, int n) {
  uint64_t expected = 0;
  for (int i = 0; i < n; ++i) {
    expected =
        (co_await fabric.CompareAndSwap(0, ptr, expected, expected + 1)).value;
    expected = expected + 1;
  }
}

void BM_SimulatedCas(benchmark::State& state) {
  for (auto _ : state) {
    rdma::FabricConfig config;
    config.num_memory_servers = 1;
    nam::Cluster cluster(config, 1 << 20);
    rdma::RemotePtr ptr = cluster.memory_server(0).region().AllocateLocal(8);
    sim::Spawn(cluster.simulator(), CasLoop(cluster.fabric(), ptr, 1000));
    cluster.simulator().Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatedCas);

}  // namespace
}  // namespace namtree

BENCHMARK_MAIN();
