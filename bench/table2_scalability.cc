// Reproduces Table 2: the theoretical scalability analysis — available
// aggregated bandwidth (step 1), per-query bandwidth requirements (step 2)
// and the resulting maximal throughput (step 3) for every scheme x
// distribution, evaluated at the Table 1 example values.

#include <cstdio>

#include "bench_common.h"
#include "model/scalability.h"

using namtree::bench::Num;
using namtree::bench::PrintRow;
using namtree::model::AvailableBandwidth;
using namtree::model::Distribution;
using namtree::model::MaxThroughputPoint;
using namtree::model::MaxThroughputRange;
using namtree::model::ModelParams;
using namtree::model::PointQueryBytes;
using namtree::model::RangeQueryBytes;
using namtree::model::Scheme;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  ModelParams p;
  p.num_servers = static_cast<double>(args.GetInt("servers", 4));
  const double s = args.GetDouble("sel", 0.001);
  const double z = args.GetDouble("z", 10);

  namtree::bench::PrintPreamble(
      "Table 2", "Scalability Analysis (Theoretical)",
      "columns: fine-grained (1-sided), coarse-grained range / hash "
      "(2-sided); sel=" +
          Num(s) + " z=" + Num(z));

  const Scheme schemes[] = {Scheme::kFineGrained, Scheme::kCoarseRange,
                            Scheme::kCoarseHash};

  auto row = [&](const char* label, auto fn) {
    std::vector<std::string> cells = {label};
    for (Scheme scheme : schemes) cells.push_back(Num(fn(scheme)));
    PrintRow(cells);
  };

  PrintRow({"quantity", "fine-grained", "coarse-range", "coarse-hash"});
  row("total_bw_uniform_GBps", [&](Scheme x) {
    return AvailableBandwidth(p, x, Distribution::kUniform) / 1e9;
  });
  row("total_bw_skew_GBps", [&](Scheme x) {
    return AvailableBandwidth(p, x, Distribution::kSkew) / 1e9;
  });
  row("point_bytes_uniform", [&](Scheme x) {
    return PointQueryBytes(p, x, Distribution::kUniform, z);
  });
  row("point_bytes_skew", [&](Scheme x) {
    return PointQueryBytes(p, x, Distribution::kSkew, z);
  });
  row("range_bytes_uniform", [&](Scheme x) {
    return RangeQueryBytes(p, x, Distribution::kUniform, s, z);
  });
  row("range_bytes_skew", [&](Scheme x) {
    return RangeQueryBytes(p, x, Distribution::kSkew, s, z);
  });
  row("max_point_qps_uniform", [&](Scheme x) {
    return MaxThroughputPoint(p, x, Distribution::kUniform, z);
  });
  row("max_point_qps_skew", [&](Scheme x) {
    return MaxThroughputPoint(p, x, Distribution::kSkew, z);
  });
  row("max_range_qps_uniform", [&](Scheme x) {
    return MaxThroughputRange(p, x, Distribution::kUniform, s, z);
  });
  row("max_range_qps_skew", [&](Scheme x) {
    return MaxThroughputRange(p, x, Distribution::kSkew, s, z);
  });
  return 0;
}
