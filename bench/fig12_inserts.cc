// Reproduces Figure 12: throughput of the mixed workloads C (5% inserts)
// and D (50% inserts) under uniform data placement, 20..240 clients, all
// three designs. Each cell starts from a freshly bulk-loaded index because
// inserts mutate the tree.

#include <cstdio>

#include "bench_common.h"

using namtree::bench::ClientSweep;
using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::MakeExperiment;
using namtree::bench::Num;
using namtree::bench::PrintRow;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 1000000));
  const int64_t scale = args.GetInt("scale", 1);

  namtree::bench::PrintPreamble(
      "Figure 12", "Throughput for Workloads C & D with Inserts",
      "uniform data, " + Num(static_cast<double>(keys)) +
          " keys; lines are <design> 5 (workload C) and <design> 50 "
          "(workload D)");

  PrintRow({"clients", "CG 5", "CG 50", "FG 5", "FG 50", "Hybrid 5",
            "Hybrid 50"});

  const DesignKind designs[] = {DesignKind::kCoarse, DesignKind::kFine,
                                DesignKind::kHybrid};
  const namtree::ycsb::WorkloadMix mixes[] = {namtree::ycsb::WorkloadC(),
                                              namtree::ycsb::WorkloadD()};

  for (uint32_t clients : ClientSweep(scale)) {
    std::vector<std::string> row = {Num(clients)};
    for (DesignKind design : designs) {
      for (const auto& mix : mixes) {
        ExperimentConfig config;
        config.design = design;
        config.num_keys = keys;
        auto exp = MakeExperiment(config);
        namtree::ycsb::RunConfig run;
        run.num_clients = clients;
        run.mix = mix;
        run.duration = namtree::bench::DurationFor(mix, keys, run.num_clients);
        run.warmup = run.duration / 10;
        row.push_back(Num(exp.Run(run).ops_per_sec));
      }
    }
    PrintRow(row);
  }
  return 0;
}
