// Reproduces Figure 15 (Appendix A.3): the effect of co-locating compute
// and memory servers. Two NAM variants with the same resources — 4 memory
// servers either on 4 dedicated machines ("distributed") or sharing their
// machines with the compute threads ("co-located") — run workloads A and B
// with 80 clients on uniform data; co-location turns ~25% of page accesses
// into local memory accesses.

#include <cstdio>

#include "bench_common.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::MakeExperiment;
using namtree::bench::Num;
using namtree::bench::PrintRow;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 1000000));
  const uint32_t clients = static_cast<uint32_t>(args.GetInt("clients", 80));

  namtree::bench::PrintPreamble(
      "Figure 15", "Effects of Co-location on Throughput",
      "uniform data, " + Num(static_cast<double>(keys)) + " keys, " +
          Num(clients) + " clients");

  struct Subplot {
    const char* label;
    namtree::ycsb::WorkloadMix mix;
  };
  const Subplot subplots[] = {
      {"point_queries", namtree::ycsb::WorkloadA()},
      {"range_sel_0.001", namtree::ycsb::WorkloadB(0.001)},
      {"range_sel_0.01", namtree::ycsb::WorkloadB(0.01)},
      {"range_sel_0.1", namtree::ycsb::WorkloadB(0.1)},
  };

  for (const Subplot& subplot : subplots) {
    std::printf("\n# subplot: %s\n", subplot.label);
    PrintRow({"design", "distributed", "co-located"});
    for (DesignKind design : {DesignKind::kFine, DesignKind::kCoarse}) {
      std::vector<std::string> row = {namtree::bench::DesignLabel(design)};
      for (bool colocate : {false, true}) {
        ExperimentConfig config;
        config.design = design;
        config.num_keys = keys;
        config.colocate = colocate;
        auto exp = MakeExperiment(config);
        namtree::ycsb::RunConfig run;
        run.num_clients = clients;
        run.mix = subplot.mix;
        run.duration = namtree::bench::DurationFor(subplot.mix, keys, run.num_clients);
        run.warmup = run.duration / 10;
        row.push_back(Num(exp.Run(run).ops_per_sec));
      }
      PrintRow(row);
    }
  }
  return 0;
}
