// Reproduces Figure 10: throughput when varying the data size at a fixed
// deployment (4 memory servers, 240 clients, uniform data): (a) point
// queries, (b) range queries with sel = 0.1. The paper sweeps 1M/10M/100M
// keys; the bench default sweeps 100K/1M/10M (--sizes to override, e.g.
// --sizes=1000000,10000000,100000000).

#include <cstdio>
#include <sstream>

#include "bench_common.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::MakeExperiment;
using namtree::bench::Num;
using namtree::bench::PrintRow;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 240));

  std::vector<uint64_t> sizes;
  {
    std::stringstream ss(args.GetString("sizes", "100000,1000000,10000000"));
    std::string item;
    while (std::getline(ss, item, ',')) sizes.push_back(std::stoull(item));
  }

  namtree::bench::PrintPreamble(
      "Figure 10", "Varying Data Size for Workloads A and B",
      "uniform data, " + Num(clients) +
          " clients; paper sizes are 1M/10M/100M — scale with --sizes");

  struct Subplot {
    const char* label;
    namtree::ycsb::WorkloadMix mix;
  };
  const Subplot subplots[] = {
      {"point_queries", namtree::ycsb::WorkloadA()},
      {"range_sel_0.1", namtree::ycsb::WorkloadB(0.1)},
  };

  for (const Subplot& subplot : subplots) {
    std::printf("\n# subplot: %s\n", subplot.label);
    PrintRow({"data_size", "coarse-grained", "fine-grained", "hybrid"});
    for (uint64_t keys : sizes) {
      std::vector<std::string> row = {Num(static_cast<double>(keys))};
      for (DesignKind design :
           {DesignKind::kCoarse, DesignKind::kFine, DesignKind::kHybrid}) {
        ExperimentConfig config;
        config.design = design;
        config.num_keys = keys;
        auto exp = MakeExperiment(config);
        namtree::ycsb::RunConfig run;
        run.num_clients = clients;
        run.mix = subplot.mix;
        run.duration = namtree::bench::DurationFor(subplot.mix, keys, run.num_clients);
        run.warmup = run.duration / 10;
        row.push_back(Num(exp.Run(run).ops_per_sec));
      }
      PrintRow(row);
    }
  }
  return 0;
}
