// Ablation for epoch rebalancing (the paper's GC "removing and
// re-balancing the index in regular intervals"): after a delete-heavy
// phase, compare chain length, range-scan throughput, and memory footprint
// with rebalancing off (compaction only) vs on (merge + unlink).

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "index/fine_grained.h"
#include "index/leaf_level.h"
#include "nam/cluster.h"

using namtree::bench::Num;
using namtree::bench::PrintRow;

namespace {

struct Outcome {
  uint64_t chain_pages = 0;
  uint64_t live_entries = 0;
  double scan_ops = 0;
  double round_trips_per_op = 0;
};

namtree::sim::Task<> CountChainTask(namtree::index::RemoteOps ops,
                                    namtree::rdma::RemotePtr first,
                                    Outcome* outcome) {
  outcome->chain_pages = co_await namtree::index::LeafLevel::CountChain(
      ops, first, &outcome->live_entries, nullptr);
}

Outcome Measure(uint32_t merge_percent, uint64_t keys, uint32_t clients) {
  namtree::rdma::FabricConfig fc;
  const uint64_t region_bytes =
      (keys / 40 + 1024) * 1024ull * 3 + (16ull << 20);
  namtree::nam::Cluster cluster(fc, region_bytes);
  namtree::index::IndexConfig ic;
  ic.gc_merge_fill_percent = merge_percent;
  namtree::index::FineGrainedIndex index(cluster, ic);
  const auto data = namtree::ycsb::GenerateDataset(keys);
  if (!index.BulkLoad(data).ok()) return {};

  // Delete-heavy phase: tombstone ~85% of the data, then two GC epochs
  // (drain, then unlink).
  namtree::nam::ClientContext gc_ctx(0, cluster.fabric(), index.page_size(),
                                     1);
  struct Driver {
    static namtree::sim::Task<> Go(namtree::index::FineGrainedIndex& index,
                                   namtree::nam::ClientContext& ctx,
                                   uint64_t keys) {
      for (uint64_t k = 0; k < keys; ++k) {
        if (k % 8 != 0) {
          (void)co_await index.Delete(ctx, k * namtree::ycsb::kKeyStride);
        }
      }
      (void)co_await index.GarbageCollect(ctx);
      (void)co_await index.GarbageCollect(ctx);
    }
  };
  namtree::sim::Spawn(cluster.simulator(),
                      Driver::Go(index, gc_ctx, keys));
  cluster.simulator().Run();

  Outcome outcome;
  namtree::sim::Spawn(
      cluster.simulator(),
      CountChainTask(namtree::index::RemoteOps(gc_ctx), index.first_leaf(),
                     &outcome));
  cluster.simulator().Run();

  // Range-scan throughput over the shrunken data set.
  namtree::ycsb::RunConfig run;
  run.num_clients = clients;
  run.mix = namtree::ycsb::WorkloadB(0.01);
  run.duration = namtree::bench::DurationFor(run.mix, keys, clients);
  run.warmup = run.duration / 10;
  const auto result = namtree::ycsb::RunWorkload(cluster, index, keys, run);
  outcome.scan_ops = result.ops_per_sec;
  outcome.round_trips_per_op =
      static_cast<double>(result.round_trips()) /
      std::max<uint64_t>(1, result.ops());
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 120));

  namtree::bench::PrintPreamble(
      "Ablation: epoch rebalancing",
      "Fine-grained index after deleting ~85% of the data + 2 GC epochs",
      Num(static_cast<double>(keys)) + " keys, " + Num(clients) +
          " scan clients (range sel=0.01)");
  PrintRow({"gc_mode", "chain_pages", "live_entries",
            "range_scan_ops_per_s", "round_trips_per_op"});

  for (uint32_t merge : {0u, 70u, 90u}) {
    const Outcome outcome = Measure(merge, keys, clients);
    PrintRow({merge == 0 ? "compact_only"
                         : ("merge_at_" + Num(merge) + "pct"),
              Num(static_cast<double>(outcome.chain_pages)),
              Num(static_cast<double>(outcome.live_entries)),
              Num(outcome.scan_ops), Num(outcome.round_trips_per_op)});
  }
  return 0;
}
