// Extension experiment: *request* skew (the original YCSB Zipfian access
// pattern) instead of the paper's attribute-value *data* skew. Scrambled
// Zipfian scatters hot keys over the key space, so every design tolerates
// it; *clustered* Zipfian (unscrambled) puts the hot set on one range
// partition, reproducing the paper's skew story from the access side:
// coarse-range collapses, hash scatters the heat, fine-grained shrugs.

#include <cstdio>

#include "bench_common.h"
#include "index/partition.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::MakeExperiment;
using namtree::bench::Num;
using namtree::bench::PrintRow;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 240));

  namtree::bench::PrintPreamble(
      "Ablation: request skew (Zipfian)",
      "Point queries under uniform vs Zipf(0.99) request distribution",
      Num(static_cast<double>(keys)) + " keys, " + Num(clients) +
          " clients, uniform data placement");
  PrintRow({"design", "uniform_requests", "zipf_scrambled",
            "zipf_clustered"});

  struct Candidate {
    const char* label;
    DesignKind design;
    namtree::index::PartitionKind partition;
  };
  const Candidate candidates[] = {
      {"coarse-range", DesignKind::kCoarse,
       namtree::index::PartitionKind::kRange},
      {"coarse-hash", DesignKind::kCoarse,
       namtree::index::PartitionKind::kHash},
      {"fine-grained", DesignKind::kFine,
       namtree::index::PartitionKind::kRange},
      {"hybrid", DesignKind::kHybrid, namtree::index::PartitionKind::kRange},
  };

  for (const Candidate& candidate : candidates) {
    std::vector<std::string> row = {candidate.label};
    for (auto dist :
         {namtree::ycsb::RequestDistribution::kUniform,
          namtree::ycsb::RequestDistribution::kZipfian,
          namtree::ycsb::RequestDistribution::kZipfianClustered}) {
      ExperimentConfig config;
      config.design = candidate.design;
      config.partition = candidate.partition;
      config.num_keys = keys;
      auto exp = MakeExperiment(config);
      namtree::ycsb::RunConfig run;
      run.num_clients = clients;
      run.mix = namtree::ycsb::WorkloadA();
      run.dist = dist;
      run.duration = 20 * namtree::kMillisecond;
      run.warmup = 2 * namtree::kMillisecond;
      row.push_back(Num(exp.Run(run).ops_per_sec));
    }
    PrintRow(row);
  }
  return 0;
}
