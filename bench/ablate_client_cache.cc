// Ablation for the Appendix A.4 client-side caching extension: fine-grained
// point-query throughput and per-op round trips with the inner-node cache
// disabled vs enabled at several TTLs, for read-only and insert-heavy
// workloads (staleness never breaks correctness, it only costs extra hops).

#include <cstdio>

#include "bench_common.h"
#include <memory>

#include "index/fine_grained.h"
#include "nam/cluster.h"

using namespace namtree;
using namtree::bench::Num;
using namtree::bench::PrintRow;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 120));

  namtree::bench::PrintPreamble(
      "Ablation: client cache (Appendix A.4)",
      "Fine-grained index with per-client inner-node caching",
      Num(static_cast<double>(keys)) + " keys, " + Num(clients) + " clients");

  struct Config {
    const char* label;
    uint32_t pages;
    SimTime ttl;
  };
  const Config configs[] = {
      {"off", 0, 0},
      {"ttl=0.5ms", 1 << 16, namtree::kMillisecond / 2},
      {"ttl=2ms", 1 << 16, 2 * namtree::kMillisecond},
      {"ttl=inf", 1 << 16, 0 /* NodeCache treats 0 as no expiry */},
  };

  for (const char* workload : {"A_point", "D_50pct_insert"}) {
    std::printf("\n# subplot: workload_%s\n", workload);
    PrintRow({"cache", "ops_per_s", "round_trips_per_op", "hit_rate"});
    for (const Config& cache_config : configs) {
      rdma::FabricConfig fabric_config;
      const uint64_t region_bytes =
          (keys / 40 + 1024) * 1024ull * 3 + (16ull << 20);
      nam::Cluster cluster(fabric_config, region_bytes);
      namtree::index::IndexConfig ic;
      ic.client_cache_pages = cache_config.pages;
      ic.client_cache_ttl = cache_config.ttl;
      auto index = std::make_unique<namtree::index::FineGrainedIndex>(
          cluster, ic);
      const auto data = namtree::ycsb::GenerateDataset(keys);
      if (!index->BulkLoad(data).ok()) return 1;

      namtree::ycsb::RunConfig run;
      run.num_clients = clients;
      run.mix = workload[0] == 'A' ? namtree::ycsb::WorkloadA()
                                   : namtree::ycsb::WorkloadD();
      run.duration = 20 * namtree::kMillisecond;
      run.warmup = 2 * namtree::kMillisecond;
      const auto result =
          namtree::ycsb::RunWorkload(cluster, *index, keys, run);
      const auto cache_stats = index->GetCacheStats();
      const double lookups = static_cast<double>(cache_stats.hits +
                                                 cache_stats.misses);
      PrintRow({cache_config.label, Num(result.ops_per_sec),
                Num(static_cast<double>(result.round_trips()) /
                    std::max<uint64_t>(1, result.ops())),
                lookups > 0 ? Num(cache_stats.hits / lookups) : "n/a"});
    }
  }
  return 0;
}
