// Reproduces Figure 11: throughput when varying the number of memory
// servers (2..8) at 120 clients for the coarse-grained and fine-grained
// schemes: (a) point uniform, (b) range sel=0.01 uniform, (c) point skew,
// (d) range sel=0.01 skew. (The paper omits the hybrid here because it
// tracks CG for point and FG for range queries.)

#include <cstdio>

#include "bench_common.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::MakeExperiment;
using namtree::bench::Num;
using namtree::bench::PrintRow;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 1000000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 120));

  namtree::bench::PrintPreamble(
      "Figure 11", "Varying # of Memory Servers for Workloads A and B",
      Num(static_cast<double>(keys)) + " keys, " + Num(clients) +
          " clients; paper scale is 100M keys");

  struct Subplot {
    const char* label;
    namtree::ycsb::WorkloadMix mix;
    bool skew;
  };
  const Subplot subplots[] = {
      {"point_uniform", namtree::ycsb::WorkloadA(), false},
      {"range_sel_0.01_uniform", namtree::ycsb::WorkloadB(0.01), false},
      {"point_skew", namtree::ycsb::WorkloadA(), true},
      {"range_sel_0.01_skew", namtree::ycsb::WorkloadB(0.01), true},
  };

  for (const Subplot& subplot : subplots) {
    std::printf("\n# subplot: %s\n", subplot.label);
    PrintRow({"memory_servers", "coarse-grained", "fine-grained"});
    for (uint32_t servers = 2; servers <= 8; servers += 2) {
      std::vector<std::string> row = {Num(servers)};
      for (DesignKind design : {DesignKind::kCoarse, DesignKind::kFine}) {
        ExperimentConfig config;
        config.design = design;
        config.num_keys = keys;
        config.num_memory_servers = servers;
        config.skewed_data = subplot.skew;
        auto exp = MakeExperiment(config);
        namtree::ycsb::RunConfig run;
        run.num_clients = clients;
        run.mix = subplot.mix;
        run.duration = namtree::bench::DurationFor(subplot.mix, keys, run.num_clients);
        run.warmup = run.duration / 10;
        row.push_back(Num(exp.Run(run).ops_per_sec));
      }
      PrintRow(row);
    }
  }
  return 0;
}
