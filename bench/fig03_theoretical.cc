// Reproduces Figure 3: theoretical maximal throughput of range queries
// (sel=0.001, z=10) for S = 2..64 memory servers, per scheme and workload
// distribution. FG's uniform and skew curves coincide (the paper plots them
// as one line), as do the CG schemes under skew.

#include <cstdio>

#include "bench_common.h"
#include "model/scalability.h"

using namtree::bench::Num;
using namtree::bench::PrintRow;
using namtree::model::Distribution;
using namtree::model::MaxThroughputRange;
using namtree::model::ModelParams;
using namtree::model::Scheme;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const double s = args.GetDouble("sel", 0.001);
  const double z = args.GetDouble("z", 10);

  namtree::bench::PrintPreamble(
      "Figure 3", "Maximal Throughput (Theoretical)",
      "range queries, sel=" + Num(s) + ", z=" + Num(z) +
          "; Table 1 example values otherwise");
  PrintRow({"servers", "fine-grained(unif/skew)", "coarse-range(unif)",
            "coarse-hash(unif)", "coarse-range/hash(skew)"});

  for (double servers = 2; servers <= 64; servers *= 2) {
    ModelParams p;
    p.num_servers = servers;
    PrintRow({Num(servers),
              Num(MaxThroughputRange(p, Scheme::kFineGrained,
                                     Distribution::kUniform, s, z)),
              Num(MaxThroughputRange(p, Scheme::kCoarseRange,
                                     Distribution::kUniform, s, z)),
              Num(MaxThroughputRange(p, Scheme::kCoarseHash,
                                     Distribution::kUniform, s, z)),
              Num(MaxThroughputRange(p, Scheme::kCoarseRange,
                                     Distribution::kSkew, s, z))});
  }
  return 0;
}
