// Ablation for the §4.3 head-node optimisation: fine-grained range-scan
// throughput and per-query round trips as a function of the head-node
// interval (0 = disabled), plus the staleness penalty after splits and the
// recovery after an epoch rebuild.

#include <cstdio>

#include "bench_common.h"
#include "index/fine_grained.h"
#include "nam/cluster.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::Num;
using namtree::bench::PrintRow;

namespace {

namtree::ycsb::RunResult RunScan(namtree::bench::Experiment& exp,
                                 uint64_t keys) {
  namtree::ycsb::RunConfig run;
  run.num_clients = 80;
  run.mix = namtree::ycsb::WorkloadB(0.01);
  run.duration = namtree::bench::DurationFor(run.mix, keys, run.num_clients);
  run.warmup = run.duration / 10;
  return exp.Run(run);
}

}  // namespace

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));

  namtree::bench::PrintPreamble(
      "Ablation: head nodes", "Fine-grained range scans (sel=0.01)",
      Num(static_cast<double>(keys)) + " keys, 80 clients");
  PrintRow({"head_interval", "lookups_per_s", "round_trips_per_op"});

  for (uint32_t interval : {0u, 4u, 8u, 16u, 32u, 64u}) {
    ExperimentConfig config;
    config.design = DesignKind::kFine;
    config.num_keys = keys;
    config.head_node_interval = interval;
    auto exp = namtree::bench::MakeExperiment(config);
    const auto result = RunScan(exp, keys);
    PrintRow({Num(interval), Num(result.ops_per_sec),
              Num(static_cast<double>(result.round_trips()) /
                  std::max<uint64_t>(1, result.ops()))});
  }

  // Staleness: splits invalidate head groupings; the epoch rebuild restores
  // the prefetch efficiency.
  std::printf("\n# staleness: scans after heavy inserts vs after rebuild\n");
  PrintRow({"phase", "lookups_per_s", "round_trips_per_op"});
  {
    ExperimentConfig config;
    config.design = DesignKind::kFine;
    config.num_keys = keys;
    config.head_node_interval = 16;
    auto exp = namtree::bench::MakeExperiment(config);

    const auto fresh = RunScan(exp, keys);
    PrintRow({"fresh", Num(fresh.ops_per_sec),
              Num(static_cast<double>(fresh.round_trips()) /
                  std::max<uint64_t>(1, fresh.ops()))});

    // Insert burst (workload D) to split many leaves.
    namtree::ycsb::RunConfig churn;
    churn.num_clients = 80;
    churn.mix = namtree::ycsb::WorkloadD();
    churn.duration = 40 * namtree::kMillisecond;
    churn.warmup = namtree::kMillisecond;
    (void)exp.Run(churn);

    const auto stale = RunScan(exp, keys);
    PrintRow({"after_inserts", Num(stale.ops_per_sec),
              Num(static_cast<double>(stale.round_trips()) /
                  std::max<uint64_t>(1, stale.ops()))});

    // One GC pass (compaction + head rebuild) from a compute client.
    namtree::ycsb::RunConfig gc;
    gc.num_clients = 1;
    gc.mix = namtree::ycsb::WorkloadA();
    gc.duration = 60 * namtree::kMillisecond;
    gc.warmup = 0;
    gc.gc_interval = 5 * namtree::kMillisecond;
    (void)exp.Run(gc);

    const auto rebuilt = RunScan(exp, keys);
    PrintRow({"after_rebuild", Num(rebuilt.ops_per_sec),
              Num(static_cast<double>(rebuilt.round_trips()) /
                  std::max<uint64_t>(1, rebuilt.ops()))});
  }
  return 0;
}
