// Google-benchmark microbenchmarks for the B-link-tree substrate: node-level
// operations (search, insert, split) and the thread-safe local tree (the
// coarse-grained memory-server component), measured in real time.

#include <benchmark/benchmark.h>

#include <vector>

#include "btree/local_tree.h"
#include "btree/page.h"
#include "btree/shared_nothing.h"
#include "common/random.h"

namespace namtree::btree {
namespace {

void BM_LeafLowerBound(benchmark::State& state) {
  std::vector<uint8_t> page(static_cast<size_t>(state.range(0)));
  PageView leaf(page.data(), static_cast<uint32_t>(page.size()));
  leaf.InitLeaf(kInfinityKey, 0);
  const uint32_t cap = leaf.leaf_capacity();
  for (uint32_t i = 0; i < cap; ++i) leaf.LeafInsert(i * 7, i);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(leaf.LeafLowerBound(rng.NextBelow(cap * 7)));
  }
}
BENCHMARK(BM_LeafLowerBound)->Arg(512)->Arg(1024)->Arg(4096);

void BM_LeafInsertAndCompact(benchmark::State& state) {
  std::vector<uint8_t> page(1024);
  PageView leaf(page.data(), 1024);
  Rng rng(2);
  for (auto _ : state) {
    leaf.InitLeaf(kInfinityKey, 0);
    const uint32_t cap = leaf.leaf_capacity();
    for (uint32_t i = 0; i < cap; ++i) {
      leaf.LeafInsert(rng.NextBelow(100000), i);
    }
    benchmark::DoNotOptimize(leaf.LeafCompact());
  }
  state.SetItemsProcessed(state.iterations() *
                          PageView::LeafCapacity(1024));
}
BENCHMARK(BM_LeafInsertAndCompact);

void BM_LeafSplit(benchmark::State& state) {
  std::vector<uint8_t> left(1024);
  std::vector<uint8_t> right(1024);
  PageView lv(left.data(), 1024);
  for (auto _ : state) {
    state.PauseTiming();
    lv.InitLeaf(kInfinityKey, 0);
    for (uint32_t i = 0; i < lv.leaf_capacity(); ++i) lv.LeafInsert(i, i);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        lv.SplitLeafInto(PageView(right.data(), 1024), 0x42));
  }
}
BENCHMARK(BM_LeafSplit);

void BM_LocalTreeLookup(benchmark::State& state) {
  LocalBLinkTree tree(1024);
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i * 2, i});
  (void)tree.BulkLoad(data);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(rng.NextBelow(n) * 2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalTreeLookup)->Arg(100000)->Arg(1000000);

void BM_LocalTreeInsert(benchmark::State& state) {
  LocalBLinkTree tree(1024);
  Rng rng(4);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert(rng.Next() >> 16, i++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalTreeInsert);

void BM_LocalTreeScan(benchmark::State& state) {
  LocalBLinkTree tree(1024);
  const uint64_t n = 200000;
  std::vector<KV> data;
  for (uint64_t i = 0; i < n; ++i) data.push_back({i, i});
  (void)tree.BulkLoad(data);
  const uint64_t span = static_cast<uint64_t>(state.range(0));
  Rng rng(5);
  std::vector<KV> out;
  for (auto _ : state) {
    out.clear();
    const Key lo = rng.NextBelow(n - span);
    benchmark::DoNotOptimize(tree.Scan(lo, lo + span, &out));
  }
  state.SetItemsProcessed(state.iterations() * span);
}
BENCHMARK(BM_LocalTreeScan)->Arg(100)->Arg(10000);

void BM_SharedNothingLookup(benchmark::State& state) {
  // Section 7 shared-nothing adaptation on real threads: remote (mailbox)
  // vs local (fast path) lookups.
  const bool local = state.range(0) != 0;
  SharedNothingCluster cluster(2, 1, 1024);
  std::vector<KV> data;
  for (uint64_t i = 0; i < 100000; ++i) data.push_back({i * 2, i});
  (void)cluster.BulkLoad(data);
  Rng rng(9);
  for (auto _ : state) {
    const Key k = rng.NextBelow(100000) * 2;
    benchmark::DoNotOptimize(
        cluster.Lookup(k, local ? cluster.NodeFor(k)
                                : SharedNothingCluster::kRemoteOnly));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(local ? "local_fast_path" : "mailbox_rpc");
}
BENCHMARK(BM_SharedNothingLookup)->Arg(0)->Arg(1);

}  // namespace
}  // namespace namtree::btree

BENCHMARK_MAIN();
