// Memory-server fault domain (docs/fault_model.md §7): kill one of four
// memory servers and measure what each replication factor preserves. Three
// phases per factor — healthy (no kill: the replication overhead itself),
// kill (the server dies mid-window: failover transient), after (the server
// is dead before the window: degraded steady state). At R=1 the dead
// server's pages are simply gone and the affected ops fail kUnavailable;
// at R=2 clients promote the rank-striped replicas and the workload keeps
// completing. `--json <path>` writes the report the CI gate archives
// (BENCH_pr7.json).
//
//   ./build/bench/fault_server_loss [--keys=50000] [--clients=32]
//                                   [--json=BENCH_pr7.json]

#include <cstdio>
#include <string>

#include "bench_common.h"

#include "index/fine_grained.h"
#include "nam/cluster.h"

using namespace namtree;
using namtree::bench::JsonReport;
using namtree::bench::Num;
using namtree::bench::PrintRow;

namespace {

constexpr uint32_t kServers = 4;
constexpr uint32_t kVictim = 1;
constexpr SimTime kKillAt = 8 * kMillisecond;
constexpr SimTime kWindow = 20 * kMillisecond;

enum class Phase { kHealthy, kKill, kAfter };

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kHealthy: return "healthy";
    case Phase::kKill: return "kill";
    case Phase::kAfter: return "after";
  }
  return "?";
}

struct Cell {
  ycsb::RunResult result;
  uint64_t dropped_verbs = 0;
};

Cell RunCell(uint64_t keys, uint32_t clients, uint32_t replication,
             Phase phase) {
  rdma::FabricConfig fc;
  fc.num_memory_servers = kServers;
  fc.replication_factor = replication;
  fc.lock_lease_ns = 100 * kMicrosecond;
  nam::Cluster cluster(fc, 64ull << 20);
  index::IndexConfig ic;
  ic.page_size = 256;
  ic.head_node_interval = 4;
  index::FineGrainedIndex index(cluster, ic);
  const auto data = ycsb::GenerateDataset(keys);
  if (!index.BulkLoad(data).ok()) std::abort();

  if (phase == Phase::kKill) {
    cluster.fabric().KillServer(kVictim, kKillAt);
  } else if (phase == Phase::kAfter) {
    cluster.fabric().KillServer(kVictim);  // dead before the first op
  }

  ycsb::RunConfig run;
  run.num_clients = clients;
  run.mix = ycsb::WorkloadD();  // 50% inserts: the replica chains are hot
  run.warmup = 0;
  run.duration = kWindow;
  run.seed = 7;

  Cell cell;
  cell.result = ycsb::RunWorkload(cluster, index, keys, run);
  cell.dropped_verbs = cluster.fabric().metrics().Value("fabric.dropped_verbs");
  return cell;
}

/// Failures a memory-server fault can cause; NotFound is workload noise.
uint64_t FaultFailedOps(const ycsb::RunResult& r) {
  return r.failures().total() - r.failures().not_found;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 50000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 32));

  namtree::bench::PrintPreamble(
      "Memory-server loss: replication factor vs fault domain",
      "Fine-grained YCSB D while 1 of 4 memory servers dies",
      Num(static_cast<double>(keys)) + " keys, " + Num(clients) +
          " clients, kill at " + Num(kKillAt / 1e6) + "ms of a " +
          Num(kWindow / 1e6) + "ms window");

  JsonReport report;
  report.Set("bench", std::string("fault_server_loss"));
  report.Set("config.keys", keys);
  report.Set("config.clients", static_cast<uint64_t>(clients));
  report.Set("config.memory_servers", static_cast<uint64_t>(kServers));
  report.Set("config.victim_server", static_cast<uint64_t>(kVictim));

  for (uint32_t replication : {1u, 2u}) {
    std::printf("\n# subplot: replication_%u\n", replication);
    PrintRow({"phase", "ops_per_s", "failed_ops", "fault_failed_ops",
              "unavailable", "aborted", "lock_steals", "dropped_verbs"});
    for (Phase phase : {Phase::kHealthy, Phase::kKill, Phase::kAfter}) {
      const Cell cell = RunCell(keys, clients, replication, phase);
      const auto& r = cell.result;
      PrintRow({PhaseName(phase), Num(r.ops_per_sec),
                Num(static_cast<double>(r.failures().total())),
                Num(static_cast<double>(FaultFailedOps(r))),
                Num(static_cast<double>(r.failures().unavailable)),
                Num(static_cast<double>(r.failures().aborted)),
                Num(static_cast<double>(r.lock_steals())),
                Num(static_cast<double>(cell.dropped_verbs))});
      const std::string key = "replication_" + std::to_string(replication) +
                              "." + PhaseName(phase);
      report.Set(key + ".ops_per_s", r.ops_per_sec);
      report.Set(key + ".failed_ops", r.failures().total());
      report.Set(key + ".fault_failed_ops", FaultFailedOps(r));
      report.Set(key + ".unavailable", r.failures().unavailable);
      report.Set(key + ".aborted", r.failures().aborted);
      report.Set(key + ".dropped_verbs", cell.dropped_verbs);
    }
  }

  if (!namtree::bench::MaybeWriteJson(args, report)) return 1;
  return 0;
}
