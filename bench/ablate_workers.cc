// Ablation for the memory-server worker count: the central claim behind
// the two-sided designs' saturation (§6.1: "the memory servers become CPU
// bound") made directly visible. Coarse-grained and hybrid scale with the
// handler pool; the fine-grained design never touches it.

#include <cstdio>

#include "bench_common.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::MakeExperiment;
using namtree::bench::Num;
using namtree::bench::PrintRow;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 240));

  namtree::bench::PrintPreamble(
      "Ablation: memory-server workers",
      "Point-query throughput vs. RPC handler threads per server",
      Num(static_cast<double>(keys)) + " keys, " + Num(clients) +
          " clients, uniform data");
  PrintRow({"workers_per_server", "coarse-grained", "fine-grained",
            "hybrid"});

  for (uint32_t workers : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<std::string> row = {Num(workers)};
    for (DesignKind design :
         {DesignKind::kCoarse, DesignKind::kFine, DesignKind::kHybrid}) {
      ExperimentConfig config;
      config.design = design;
      config.num_keys = keys;
      config.workers_per_server = workers;
      auto exp = MakeExperiment(config);
      namtree::ycsb::RunConfig run;
      run.num_clients = clients;
      run.mix = namtree::ycsb::WorkloadA();
      run.duration = 20 * namtree::kMillisecond;
      run.warmup = 2 * namtree::kMillisecond;
      row.push_back(Num(exp.Run(run).ops_per_sec));
    }
    PrintRow(row);
  }
  return 0;
}
