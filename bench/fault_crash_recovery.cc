// Crash-fault ablation (docs/fault_model.md): kill a growing fraction of
// the closed-loop clients mid-run and measure what the survivors keep
// delivering, how many orphaned locks get lease-stolen, and what the
// failure surface looks like per status class. With zero crashed clients
// the lease/deadline machinery is armed but idle, so the first row doubles
// as the no-regression baseline for the healthy path.
//
//   ./build/bench/fault_crash_recovery [--keys=200000] [--clients=80]
//                                      [--lease_us=100]

#include <cstdio>
#include <memory>

#include "bench_common.h"

#include "index/fine_grained.h"
#include "index/hybrid.h"
#include "nam/cluster.h"

using namespace namtree;
using namtree::bench::Num;
using namtree::bench::PrintRow;

namespace {

struct Cell {
  ycsb::RunResult result;
  uint64_t dropped_verbs = 0;
};

template <typename Index>
Cell RunCell(uint64_t keys, uint32_t clients, uint32_t crashed,
             SimTime lease_ns, uint64_t seed) {
  rdma::FabricConfig fc;
  fc.lock_lease_ns = lease_ns;
  fc.rpc_timeout_ns = 200 * kMicrosecond;
  // Stagger the kills across the run: victim i dies after its
  // (i+1)*150th verb, i.e. at different protocol depths. A closed-loop
  // client sharing the fabric with ~80 peers issues a few hundred verbs
  // per measured window, so every point fires inside the run.
  for (uint32_t c = 0; c < crashed; ++c) {
    fc.crash_points.push_back({c + 1, (c + 1) * 150ull});
  }
  const uint64_t region_bytes = (keys / 40 + 1024) * 1024ull * 3 +
                                (16ull << 20);
  nam::Cluster cluster(fc, region_bytes);
  index::IndexConfig ic;
  Index index(cluster, ic);
  const auto data = ycsb::GenerateDataset(keys);
  if (!index.BulkLoad(data).ok()) std::abort();

  ycsb::RunConfig run;
  run.num_clients = clients;
  run.mix = ycsb::WorkloadD();  // 50% inserts: locks are actually held
  run.warmup = 2 * kMillisecond;
  run.duration = 20 * kMillisecond;
  run.gc_interval = 5 * kMillisecond;
  run.seed = seed;

  Cell cell;
  cell.result = ycsb::RunWorkload(cluster, index, keys, run);
  cell.dropped_verbs = cluster.fabric().metrics().Value("fabric.dropped_verbs");
  return cell;
}

template <typename Index>
void RunDesign(const char* label, uint64_t keys, uint32_t clients,
               SimTime lease_ns) {
  std::printf("\n# subplot: %s\n", label);
  PrintRow({"crashed_clients", "dead_clients", "ops_per_s",
            "failed_unavailable", "failed_timed_out", "lock_steals",
            "backoff_rounds", "dropped_verbs"});
  for (uint32_t crashed : {0u, 1u, 2u, 4u, 8u}) {
    const Cell cell =
        RunCell<Index>(keys, clients, crashed, lease_ns, 7 + crashed);
    PrintRow({Num(crashed),
              Num(static_cast<double>(cell.result.dead_clients())),
              Num(cell.result.ops_per_sec),
              Num(static_cast<double>(cell.result.failures().unavailable)),
              Num(static_cast<double>(cell.result.failures().timed_out)),
              Num(static_cast<double>(cell.result.lock_steals())),
              Num(static_cast<double>(cell.result.backoff_rounds())),
              Num(static_cast<double>(cell.dropped_verbs))});
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 200000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 80));
  const SimTime lease_ns =
      static_cast<SimTime>(args.GetInt("lease_us", 100)) * kMicrosecond;

  namtree::bench::PrintPreamble(
      "Ablation: crash faults and orphaned-lock recovery",
      "Survivor throughput while 0..8 of the clients are killed mid-run",
      Num(static_cast<double>(keys)) + " keys, " + Num(clients) +
          " clients, workload D, lease " + Num(lease_ns / 1000.0) + "us");

  RunDesign<index::FineGrainedIndex>("fine_grained", keys, clients,
                                     lease_ns);
  RunDesign<index::HybridIndex>("hybrid", keys, clients, lease_ns);
  return 0;
}
