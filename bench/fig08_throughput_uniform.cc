// Reproduces Figure 8: throughput of workloads A and B under uniform data
// placement (same axes as Figure 7).

#include "bench_common.h"

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  namtree::bench::RunLoadSweep(
      args, "Figure 8",
      "Throughput for Workloads A and B (uniform data)",
      /*skewed_data=*/false, namtree::bench::SweepMetric::kThroughput);
  return 0;
}
