// Ablation for the §3.2 transport decision: the paper implements its RPCs
// over reliable connections (RC) + shared receive queues, in contrast to
// FaSST's unreliable datagrams (UD), arguing that index throughput is
// bounded by memory-server CPU or bandwidth rather than NIC message rate.
// This bench measures both transports for the coarse-grained design. With
// the paper's worker counts the transports tie exactly (the handlers, not
// the NIC, are the bottleneck — the paper's argument for RC); even with an
// inflated worker pool the index workloads stay demand- or bandwidth-bound
// before the per-message NIC cost matters, so RC's simplicity costs
// nothing. (UD's message-rate advantage only appears when the two-sided
// engine cost is raised far above the calibrated Connect-IB value; see
// tests/fault_injection_test.cc.)

#include <cstdio>

#include "bench_common.h"
#include "index/coarse_grained.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::Num;
using namtree::bench::PrintRow;

namespace {

double Measure(namtree::rdma::FabricConfig::RpcTransport transport,
               uint32_t workers, const namtree::ycsb::WorkloadMix& mix,
               uint64_t keys, uint32_t clients) {
  namtree::rdma::FabricConfig fc;
  fc.rpc_transport = transport;
  if (workers > 0) fc.workers_per_server = workers;
  const uint64_t region_bytes =
      (keys / 40 + 1024) * 1024ull * 3 + (16ull << 20);
  namtree::nam::Cluster cluster(fc, region_bytes);
  namtree::index::IndexConfig ic;
  namtree::index::CoarseGrainedIndex index(cluster, ic);
  const auto data = namtree::ycsb::GenerateDataset(keys);
  if (!index.BulkLoad(data).ok()) return -1;
  namtree::ycsb::RunConfig run;
  run.num_clients = clients;
  run.mix = mix;
  run.duration = namtree::bench::DurationFor(mix, keys, clients);
  run.warmup = run.duration / 10;
  return namtree::ycsb::RunWorkload(cluster, index, keys, run).ops_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 240));

  namtree::bench::PrintPreamble(
      "Ablation: RPC transport (RC+SRQ vs UD)",
      "Coarse-grained design, point queries and range queries",
      Num(static_cast<double>(keys)) + " keys, " + Num(clients) +
          " clients; workers=paper(4) vs inflated(64)");

  using Transport = namtree::rdma::FabricConfig::RpcTransport;
  struct Cell {
    const char* label;
    namtree::ycsb::WorkloadMix mix;
  };
  const Cell cells[] = {
      {"point_queries", namtree::ycsb::WorkloadA()},
      {"range_sel_0.01", namtree::ycsb::WorkloadB(0.01)},
  };

  for (uint32_t workers : {0u, 64u}) {
    std::printf("\n# subplot: workers_%s\n",
                workers == 0 ? "paper" : "inflated");
    PrintRow({"workload", "rc_srq", "ud"});
    for (const Cell& cell : cells) {
      PrintRow({cell.label,
                Num(Measure(Transport::kReliableConnection, workers,
                            cell.mix, keys, clients)),
                Num(Measure(Transport::kUnreliableDatagram, workers,
                            cell.mix, keys, clients))});
    }
  }
  return 0;
}
