#include "bench_common.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "index/coarse_grained.h"
#include "index/coarse_one_sided.h"
#include "index/fine_grained.h"
#include "index/hybrid.h"

namespace namtree::bench {

const char* DesignLabel(DesignKind kind) {
  switch (kind) {
    case DesignKind::kCoarse:
      return "coarse-grained";
    case DesignKind::kFine:
      return "fine-grained";
    case DesignKind::kHybrid:
      return "hybrid";
    case DesignKind::kCoarseOneSided:
      return "coarse-one-sided";
  }
  return "?";
}

std::vector<double> SkewWeights(uint32_t servers) {
  if (servers == 1) return {1.0};
  if (servers == 4) return {0.80, 0.12, 0.05, 0.03};  // paper §6.1
  std::vector<double> weights(servers, 0.0);
  weights[0] = 0.80;
  // Remaining 20% split geometrically (each next server gets ~60% of the
  // previous one's share), echoing the 12/5/3 tail.
  double rest = 0.20;
  double share = rest * 0.4 / (1.0 - std::pow(0.6, servers - 1.0));
  double acc = 0;
  for (uint32_t s = 1; s < servers; ++s) {
    weights[s] = share * std::pow(0.6, s - 1.0);
    acc += weights[s];
  }
  // Normalise the tail to exactly 20%.
  for (uint32_t s = 1; s < servers; ++s) weights[s] *= rest / acc;
  return weights;
}

Experiment MakeExperiment(const ExperimentConfig& config) {
  rdma::FabricConfig fabric_config;
  fabric_config.num_memory_servers = config.num_memory_servers;
  fabric_config.colocate = config.colocate;
  if (config.colocate) {
    // Appendix A.3 deployment: one memory server per machine, compute
    // threads on the same machines.
    fabric_config.memory_servers_per_machine = 1;
    fabric_config.clients_per_compute_machine =
        std::max<uint32_t>(1, 80 / config.num_memory_servers);
  }
  if (config.workers_per_server > 0) {
    fabric_config.workers_per_server = config.workers_per_server;
  }
  fabric_config.verb_chaining = config.verb_chaining;
  fabric_config.read_combining = config.read_combining;

  uint64_t region_bytes = config.region_bytes;
  if (region_bytes == 0) {
    // Leaves + inner nodes + headroom for splits/heads; skew places up to
    // ~85% of the pages on server 0, so size for that.
    const uint64_t total_pages =
        config.num_keys / 40 + 1024;  // ~52 entries/leaf at 1KB, inflated
    region_bytes = total_pages * config.page_size * 3 + (16ull << 20);
  }

  Experiment exp;
  exp.cluster = std::make_unique<nam::Cluster>(fabric_config, region_bytes);
  exp.num_keys = config.num_keys;

  index::IndexConfig index_config;
  index_config.page_size = config.page_size;
  index_config.head_node_interval = config.head_node_interval;
  index_config.partition = config.partition;
  index_config.client_cache_pages = config.client_cache_pages;
  index_config.client_cache_ttl = config.client_cache_ttl;
  index_config.speculative_descent = config.speculative_descent;
  if (config.skewed_data) {
    index_config.partition_weights = SkewWeights(config.num_memory_servers);
  }

  switch (config.design) {
    case DesignKind::kCoarse:
      exp.index = std::make_unique<index::CoarseGrainedIndex>(*exp.cluster,
                                                              index_config);
      break;
    case DesignKind::kFine:
      exp.index = std::make_unique<index::FineGrainedIndex>(*exp.cluster,
                                                            index_config);
      break;
    case DesignKind::kHybrid:
      exp.index = std::make_unique<index::HybridIndex>(*exp.cluster,
                                                       index_config);
      break;
    case DesignKind::kCoarseOneSided:
      exp.index = std::make_unique<index::CoarseOneSidedIndex>(*exp.cluster,
                                                               index_config);
      break;
  }

  const auto data = ycsb::GenerateDataset(config.num_keys);
  const Status status = exp.index->BulkLoad(data);
  if (!status.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return exp;
}

std::vector<uint32_t> ClientSweep(int64_t scale) {
  // The paper sweeps 20..240 clients in steps of one compute server (40
  // threads); we add the 20-client half-machine point it plots first.
  std::vector<uint32_t> sweep = {20, 40, 80, 120, 160, 200, 240};
  if (scale > 1) {
    std::vector<uint32_t> scaled;
    for (size_t i = 0; i < sweep.size(); i += static_cast<size_t>(scale)) {
      scaled.push_back(sweep[i]);
    }
    if (scaled.back() != sweep.back()) scaled.push_back(sweep.back());
    return scaled;
  }
  return sweep;
}

SimTime DurationFor(const ycsb::WorkloadMix& mix, uint64_t num_keys,
                    uint32_t clients) {
  // Range queries cost ~sel * num_leaves page accesses each. Under heavy
  // load the cluster serves roughly (workers + NIC pipelines) queries in
  // parallel, so a closed-loop client sees ~clients/16 queue positions in
  // front of it; size the window for a handful of completions per client.
  if (mix.range > 0) {
    const double leaves = static_cast<double>(num_keys) / 52.0;
    const double pages = mix.range_selectivity * leaves;
    const SimTime per_query =
        static_cast<SimTime>(pages * 2500.0) + 50 * kMicrosecond;
    const SimTime queue_factor = std::max<SimTime>(12, clients / 6);
    return std::max<SimTime>(30 * kMillisecond, queue_factor * per_query);
  }
  return 20 * kMillisecond;
}

void RunLoadSweep(const ArgParser& args, const std::string& figure,
                  const std::string& title, bool skewed_data,
                  SweepMetric metric) {
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 1000000));
  const int64_t scale = args.GetInt("scale", 1);
  const std::vector<uint32_t> clients = ClientSweep(scale);

  PrintPreamble(figure, title,
                std::string("data: ") + Num(static_cast<double>(keys)) +
                    " keys, " + (skewed_data ? "skewed (80/12/5/3)"
                                             : "uniform") +
                    " placement; 4 memory servers on 2 machines; paper scale "
                    "is 100M keys");

  struct Subplot {
    const char* label;
    ycsb::WorkloadMix mix;
  };
  const std::vector<Subplot> subplots = {
      {"point_queries", ycsb::WorkloadA()},
      {"range_sel_0.001", ycsb::WorkloadB(0.001)},
      {"range_sel_0.01", ycsb::WorkloadB(0.01)},
      {"range_sel_0.1", ycsb::WorkloadB(0.1)},
  };
  const std::vector<DesignKind> designs = {
      DesignKind::kCoarse, DesignKind::kFine, DesignKind::kHybrid};

  for (const Subplot& subplot : subplots) {
    std::printf("\n# subplot: %s\n", subplot.label);
    PrintRow({"clients", "coarse-grained", "fine-grained", "hybrid"});

    // One experiment per design, reused across the (read-only) sweep.
    std::vector<Experiment> experiments;
    for (DesignKind design : designs) {
      ExperimentConfig config;
      config.design = design;
      config.num_keys = keys;
      config.skewed_data = skewed_data;
      experiments.push_back(MakeExperiment(config));
    }

    for (uint32_t n : clients) {
      std::vector<std::string> row = {Num(n)};
      for (size_t d = 0; d < designs.size(); ++d) {
        ycsb::RunConfig run;
        run.num_clients = n;
        run.mix = subplot.mix;
        run.duration = DurationFor(subplot.mix, keys, n);
        run.warmup = run.duration / 10;
        const ycsb::RunResult result = experiments[d].Run(run);
        double value = 0;
        switch (metric) {
          case SweepMetric::kThroughput:
            value = result.ops_per_sec;
            break;
          case SweepMetric::kBandwidth:
            value = result.gb_per_sec;
            break;
          case SweepMetric::kLatency:
            value = result.latency.mean() / 1e9;  // seconds, as in Fig 13/14
            break;
        }
        row.push_back(Num(value));
      }
      PrintRow(row);
    }
  }
}

void PrintPreamble(const std::string& figure, const std::string& title,
                   const std::string& note) {
  std::printf("# %s — %s\n", figure.c_str(), title.c_str());
  if (!note.empty()) std::printf("# %s\n", note.c_str());
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : "\t", cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string Num(double v) {
  char buf[64];
  if (v == static_cast<uint64_t>(v) && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, static_cast<uint64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

namespace {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

/// Serialises `entries` (dotted key paths → literals) as one object,
/// nesting on the first path segment and preserving first-seen order.
std::string SerializeObject(
    const std::vector<std::pair<std::string, std::string>>& entries,
    int indent) {
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, std::string>>>>
      groups;
  for (const auto& [key, literal] : entries) {
    const size_t dot = key.find('.');
    const std::string head = key.substr(0, dot);
    const std::string rest =
        dot == std::string::npos ? "" : key.substr(dot + 1);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == head; });
    if (it == groups.end()) {
      groups.push_back({head, {}});
      it = groups.end() - 1;
    }
    it->second.push_back({rest, literal});
  }
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = "{\n";
  for (size_t i = 0; i < groups.size(); ++i) {
    out += pad + "  " + JsonQuote(groups[i].first) + ": ";
    const auto& members = groups[i].second;
    if (members.size() == 1 && members[0].first.empty()) {
      out += members[0].second;
    } else {
      out += SerializeObject(members, indent + 2);
    }
    if (i + 1 < groups.size()) out += ",";
    out += "\n";
  }
  out += pad + "}";
  return out;
}

}  // namespace

void JsonReport::Set(const std::string& key, double value) {
  char buf[64];
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<int64_t>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", value);
  }
  entries_.emplace_back(key, buf);
}

void JsonReport::Set(const std::string& key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  entries_.emplace_back(key, buf);
}

void JsonReport::Set(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, JsonQuote(value));
}

std::string JsonReport::ToString() const {
  return SerializeObject(entries_, 0);
}

bool JsonReport::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string body = ToString() + "\n";
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
  return ok;
}

void EmitMetrics(const metrics::Delta& counters, JsonReport& report,
                 const std::string& prefix) {
  for (const auto& family : counters.families()) {
    for (const auto& [label_values, value] : family.values) {
      std::string key = prefix + "." + family.name;
      if (!label_values.empty()) {
        key += ".";
        for (size_t i = 0; i < label_values.size(); ++i) {
          if (i > 0) key += ",";
          key += family.label_keys[i] + "=" + label_values[i];
        }
      }
      if (family.kind == metrics::MetricKind::kHistogram) {
        report.Set(key + ".count", value);
        for (const auto& [hist_values, hist] : family.hists) {
          if (hist_values == label_values) {
            report.Set(key + ".mean_ns", hist.mean());
            report.Set(key + ".p99_ns", hist.Quantile(0.99));
            break;
          }
        }
      } else {
        report.Set(key, value);
      }
    }
  }
}

bool MaybeWriteJson(const ArgParser& args, const JsonReport& report) {
  if (!args.Has("json")) return true;
  return report.WriteTo(args.GetString("json", ""));
}

}  // namespace namtree::bench
