// Extension experiment: the full §2.2 design matrix — distribution
// (coarse/fine) x access primitive (one-/two-sided) — measured on the same
// workloads. The paper implements three corners (Designs 1-3); Design 4
// (coarse-grained one-sided) completes the matrix and isolates the axes:
// comparing columns isolates the primitive, comparing rows isolates the
// distribution. Under skew, both coarse rows collapse regardless of the
// primitive — placement, not access method, is what skew punishes.

#include <cstdio>

#include "bench_common.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::JsonReport;
using namtree::bench::MakeExperiment;
using namtree::bench::MaybeWriteJson;
using namtree::bench::Num;
using namtree::bench::PrintRow;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));
  const uint32_t clients =
      static_cast<uint32_t>(args.GetInt("clients", 240));

  namtree::bench::PrintPreamble(
      "Design-space matrix (§2.2)",
      "distribution x RDMA primitive; hybrid shown for reference",
      Num(static_cast<double>(keys)) + " keys, " + Num(clients) +
          " clients, 4 memory servers");

  struct Cell {
    const char* label;
    const char* json_key;
    namtree::ycsb::WorkloadMix mix;
    bool skew;
  };
  const Cell cells[] = {
      {"point_uniform", "point_uniform", namtree::ycsb::WorkloadA(), false},
      {"point_skew", "point_skew", namtree::ycsb::WorkloadA(), true},
      {"range_0.01_uniform", "range_1pct_uniform", namtree::ycsb::WorkloadB(0.01),
       false},
      {"range_0.01_skew", "range_1pct_skew", namtree::ycsb::WorkloadB(0.01),
       true},
      {"insert_heavy_uniform", "insert_heavy_uniform", namtree::ycsb::WorkloadD(),
       false},
  };

  const struct {
    const char* label;
    const char* json_key;
    DesignKind design;
  } designs[] = {
      {"coarse/2-sided (D1)", "coarse_grained", DesignKind::kCoarse},
      {"coarse/1-sided (D4)", "coarse_one_sided", DesignKind::kCoarseOneSided},
      {"fine/1-sided   (D2)", "fine_grained", DesignKind::kFine},
      {"hybrid         (D3)", "hybrid", DesignKind::kHybrid},
  };

  JsonReport report;
  report.Set("bench", std::string("design_space_matrix"));
  report.Set("config.keys", keys);
  report.Set("config.clients", static_cast<uint64_t>(clients));

  PrintRow({"design", "point_unif", "point_skew", "range_unif", "range_skew",
            "insert_unif"});
  for (const auto& d : designs) {
    std::vector<std::string> row = {d.label};
    for (const Cell& cell : cells) {
      ExperimentConfig config;
      config.design = d.design;
      config.num_keys = keys;
      config.skewed_data = cell.skew;
      auto exp = MakeExperiment(config);
      namtree::ycsb::RunConfig run;
      run.num_clients = clients;
      run.mix = cell.mix;
      run.duration =
          namtree::bench::DurationFor(cell.mix, keys, run.num_clients);
      run.warmup = run.duration / 10;
      const double ops_per_sec = exp.Run(run).ops_per_sec;
      report.Set(std::string(d.json_key) + "." + cell.json_key, ops_per_sec);
      row.push_back(Num(ops_per_sec));
    }
    PrintRow(row);
  }
  if (!MaybeWriteJson(args, report)) return 1;
  return 0;
}
