// Ablation for the one-RTT lookup fast path: (1) speculative descent —
// round trips per uniform lookup on a height>=3 fine-grained tree whose
// cached inner images are TTL-expired (the cold-path regime the predictor
// targets), speculation off vs on; (2) in-flight read combining — duplicate
// in-flight READs under a pipelined Zipf workload, combining off vs on;
// (3) batched MultiGet — round trips per key for a dense batch, single
// lookups vs one grouped chain walk. `--json <path>` writes the
// machine-readable report the CI smoke-bench gates on (BENCH_pr8.json).

#include <cstdio>

#include "bench_common.h"
#include "index/fine_grained.h"
#include "rdma/audit.h"
#include "rdma/fabric.h"
#include "sim/task.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::JsonReport;
using namtree::bench::MakeExperiment;
using namtree::bench::Num;
using namtree::bench::PrintRow;

namespace {

using namtree::btree::Key;
using namtree::index::LookupResult;

// namtree-lint: safe-coro-ref(referents live in the measuring function's frame, which blocks on simulator.Run() until this task finishes)
namtree::sim::Task<> UniformLookups(namtree::index::DistributedIndex& index,
                                    namtree::nam::ClientContext& ctx,
                                    uint64_t rounds, uint64_t keys,
                                    uint64_t* found) {
  for (uint64_t i = 0; i < rounds; ++i) {
    const Key k = ctx.rng().NextBelow(keys) * namtree::ycsb::kKeyStride;
    const LookupResult r = co_await index.Lookup(ctx, k);
    if (r.found) (*found)++;
  }
}

struct SpecPhaseResult {
  double round_trips_per_op = 0;
  uint64_t speculative_hits = 0;
  uint64_t mispredicts = 0;
  uint64_t found = 0;
  uint8_t root_level = 0;
};

/// Uniform single-client lookups on a fine-grained tree with every inner
/// image cached but TTL-expired at reuse time: the plain loop pays one RTT
/// per level, the speculative loop predicts through the expired images and
/// refreshes path + leaf in one doorbell-batched READ.
SpecPhaseResult RunSpecPhase(bool speculative, uint64_t keys,
                             uint64_t rounds) {
  ExperimentConfig config;
  config.design = DesignKind::kFine;
  config.num_keys = keys;
  config.page_size = 256;  // small pages: height >= 3 at bench scale
  config.client_cache_pages = 4096;
  config.client_cache_ttl = 30 * namtree::kMicrosecond;
  config.speculative_descent = speculative;
  namtree::bench::Experiment exp = MakeExperiment(config);
  namtree::sim::Simulator& simulator = exp.cluster->simulator();
  exp.cluster->fabric().SetNumClients(1);
  namtree::nam::ClientContext ctx(0, exp.cluster->fabric(),
                                  exp.index->page_size(), 7);

  // Warm pass: touch every leaf so all inner images are cached (they will
  // be expired, not evicted, by measurement time).
  uint64_t warm_found = 0;
  namtree::sim::Spawn(simulator, UniformLookups(*exp.index, ctx, 3 * keys / 4,
                                                keys, &warm_found));
  simulator.Run();

  const uint64_t before = ctx.round_trips;
  SpecPhaseResult r;
  namtree::sim::Spawn(simulator,
                      UniformLookups(*exp.index, ctx, rounds, keys, &r.found));
  simulator.Run();

  r.round_trips_per_op = static_cast<double>(ctx.round_trips - before) /
                         static_cast<double>(rounds);
  r.speculative_hits = ctx.speculative_hits;
  r.mispredicts = ctx.mispredicts;
  r.root_level =
      static_cast<namtree::index::FineGrainedIndex*>(exp.index.get())
          ->root_level();
  return r;
}

struct CombinePhaseResult {
  uint64_t duplicate_inflight_reads = 0;
  uint64_t combined_reads = 0;
  double ops_per_s = 0;
  uint64_t failed_ops = 0;
  /// Registry window of the run — emitted wholesale into the JSON report.
  namtree::metrics::Delta counters;
};

/// Pipelined Zipf point lookups on the fine-grained design: 8 lanes per
/// client hammer the same hot pages, so without combining many READs
/// duplicate one already in flight from the same client.
CombinePhaseResult RunCombinePhase(bool combining, uint64_t keys,
                                   uint32_t clients, uint32_t depth) {
  ExperimentConfig config;
  config.design = DesignKind::kFine;
  config.num_keys = keys;
  config.page_size = 256;
  config.read_combining = combining;
  namtree::bench::Experiment exp = MakeExperiment(config);

  namtree::ycsb::RunConfig run;
  run.num_clients = clients;
  run.pipeline_depth = depth;
  run.mix = namtree::ycsb::WorkloadA();
  run.dist = namtree::ycsb::RequestDistribution::kZipfian;
  run.zipf_theta = 0.99;
  run.warmup = namtree::kMillisecond;
  run.duration = 10 * namtree::kMillisecond;
  const namtree::ycsb::RunResult result = exp.Run(run);

  CombinePhaseResult r;
  const namtree::rdma::VerbAuditor* auditor = exp.cluster->fabric().auditor();
  r.duplicate_inflight_reads =
      auditor ? auditor->duplicate_inflight_reads() : 0;
  r.combined_reads = result.combined_reads();
  r.ops_per_s = result.ops_per_sec;
  r.failed_ops = result.failed_ops();
  r.counters = result.counters;
  return r;
}

struct MultiGetPhaseResult {
  double single_round_trips_per_op = 0;
  double grouped_round_trips_per_op = 0;
  uint64_t missing = 0;
};

// namtree-lint: safe-coro-ref(referents live in RunMultiGetPhase's frame, which blocks on simulator.Run() until this task finishes)
namtree::sim::Task<> MultiGetDriver(namtree::index::DistributedIndex& index,
                                    namtree::nam::ClientContext& ctx,
                                    uint64_t keys, uint64_t batch_span,
                                    MultiGetPhaseResult* out) {
  // Warm the inner cache so grouping has predictions to work with.
  for (Key k = 0; k < keys; k += 16) {
    (void)(co_await index.Lookup(ctx, k * namtree::ycsb::kKeyStride)).status;
  }
  std::vector<Key> batch;
  for (Key k = 1000; k < 1000 + batch_span; ++k) {
    batch.push_back(k * namtree::ycsb::kKeyStride);
  }
  const uint64_t before_single = ctx.round_trips;
  for (const Key k : batch) {
    const LookupResult r = co_await index.Lookup(ctx, k);
    if (!r.found) out->missing++;
  }
  out->single_round_trips_per_op =
      static_cast<double>(ctx.round_trips - before_single) /
      static_cast<double>(batch.size());

  std::vector<LookupResult> results(batch.size());
  const uint64_t before_multi = ctx.round_trips;
  co_await index.MultiGet(ctx, batch, results.data());
  out->grouped_round_trips_per_op =
      static_cast<double>(ctx.round_trips - before_multi) /
      static_cast<double>(batch.size());
  for (const LookupResult& r : results) {
    if (!r.found) out->missing++;
  }
}

MultiGetPhaseResult RunMultiGetPhase(uint64_t keys) {
  ExperimentConfig config;
  config.design = DesignKind::kFine;
  config.num_keys = keys;
  config.page_size = 256;
  config.client_cache_pages = 4096;
  config.client_cache_ttl = 0;  // NodeCache treats 0 as no expiry
  namtree::bench::Experiment exp = MakeExperiment(config);
  exp.cluster->fabric().SetNumClients(1);
  namtree::nam::ClientContext ctx(0, exp.cluster->fabric(),
                                  exp.index->page_size(), 11);
  MultiGetPhaseResult r;
  namtree::sim::Spawn(exp.cluster->simulator(),
                      MultiGetDriver(*exp.index, ctx, keys, 256, &r));
  exp.cluster->simulator().Run();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 60000));
  const uint64_t rounds = static_cast<uint64_t>(args.GetInt("rounds", 4000));
  const uint32_t clients = static_cast<uint32_t>(args.GetInt("clients", 8));
  const uint32_t depth = static_cast<uint32_t>(args.GetInt("depth", 8));

  namtree::bench::PrintPreamble(
      "Ablation: speculative descent / read combining / MultiGet",
      "One-RTT lookup fast paths on the fine-grained design",
      Num(static_cast<double>(keys)) + " keys, page=256; spec phase: 1 "
          "client, uniform, TTL-expired inner cache; combining phase: " +
          Num(clients) + " clients x depth " + Num(depth) + ", Zipf 0.99");

  std::printf("\n# subplot: round_trips_per_lookup\n");
  PrintRow({"mode", "round_trips_per_op", "spec_hits", "mispredicts",
            "root_level"});
  const SpecPhaseResult spec_base = RunSpecPhase(false, keys, rounds);
  PrintRow({"plain", Num(spec_base.round_trips_per_op),
            Num(spec_base.speculative_hits), Num(spec_base.mispredicts),
            Num(spec_base.root_level)});
  const SpecPhaseResult spec_on = RunSpecPhase(true, keys, rounds);
  PrintRow({"speculative", Num(spec_on.round_trips_per_op),
            Num(spec_on.speculative_hits), Num(spec_on.mispredicts),
            Num(spec_on.root_level)});
  const double rtt_reduction =
      spec_base.round_trips_per_op > 0
          ? 100.0 *
                (1.0 - spec_on.round_trips_per_op /
                           spec_base.round_trips_per_op)
          : 0;
  std::printf("# round trips per lookup: %.3f -> %.3f (-%.1f%%)\n",
              spec_base.round_trips_per_op, spec_on.round_trips_per_op,
              rtt_reduction);

  std::printf("\n# subplot: duplicate_inflight_reads\n");
  PrintRow({"mode", "duplicates", "combined_reads", "ops_per_s"});
  const CombinePhaseResult comb_base =
      RunCombinePhase(false, keys, clients, depth);
  PrintRow({"no_combining", Num(comb_base.duplicate_inflight_reads),
            Num(comb_base.combined_reads), Num(comb_base.ops_per_s)});
  const CombinePhaseResult comb_on =
      RunCombinePhase(true, keys, clients, depth);
  PrintRow({"combining", Num(comb_on.duplicate_inflight_reads),
            Num(comb_on.combined_reads), Num(comb_on.ops_per_s)});

  std::printf("\n# subplot: multiget_round_trips\n");
  PrintRow({"mode", "round_trips_per_key"});
  const MultiGetPhaseResult mg = RunMultiGetPhase(keys);
  PrintRow({"single_lookups", Num(mg.single_round_trips_per_op)});
  PrintRow({"multiget", Num(mg.grouped_round_trips_per_op)});
  const double mg_speedup =
      mg.grouped_round_trips_per_op > 0
          ? mg.single_round_trips_per_op / mg.grouped_round_trips_per_op
          : 0;
  std::printf("# dense-batch round trips per key: x%.2f fewer\n", mg_speedup);

  JsonReport report;
  report.Set("bench", std::string("ablate_speculative_descent"));
  report.Set("config.keys", keys);
  report.Set("config.rounds", rounds);
  report.Set("config.page_size", static_cast<uint64_t>(256));
  report.Set("config.combining_clients", static_cast<uint64_t>(clients));
  report.Set("config.pipeline_depth", static_cast<uint64_t>(depth));
  report.Set("spec.root_level", static_cast<uint64_t>(spec_base.root_level));
  report.Set("spec.base.round_trips_per_op", spec_base.round_trips_per_op);
  report.Set("spec.speculative.round_trips_per_op",
             spec_on.round_trips_per_op);
  report.Set("spec.speculative.hits", spec_on.speculative_hits);
  report.Set("spec.speculative.mispredicts", spec_on.mispredicts);
  report.Set("spec.round_trip_reduction_percent", rtt_reduction);
  report.Set("combining.base.duplicate_inflight_reads",
             comb_base.duplicate_inflight_reads);
  report.Set("combining.base.ops_per_s", comb_base.ops_per_s);
  report.Set("combining.combined.duplicate_inflight_reads",
             comb_on.duplicate_inflight_reads);
  report.Set("combining.combined.combined_reads", comb_on.combined_reads);
  report.Set("combining.combined.ops_per_s", comb_on.ops_per_s);
  report.Set("multiget.single_round_trips_per_key",
             mg.single_round_trips_per_op);
  report.Set("multiget.grouped_round_trips_per_key",
             mg.grouped_round_trips_per_op);
  report.Set("multiget.reduction_factor", mg_speedup);
  report.Set("multiget.missing", mg.missing);
  // The whole registry window of the combining-on run, emitted generically
  // (docs/observability.md); the CI metrics-schema step diffs this key set.
  namtree::bench::EmitMetrics(comb_on.counters, report);
  if (!namtree::bench::MaybeWriteJson(args, report)) return 1;
  return 0;
}
