// Extension table backing the paper's §6.1 "Discussion of Network
// Utilization": per-operation network cost of every design — round trips
// and memory-server bytes per operation — for point queries, range queries
// and inserts. Quantifies statements like "the fine-grained scheme needs
// multiple round-trips to traverse the index" and "for range queries the
// communication is dominated by the leaf level".

#include <cstdio>

#include "bench_common.h"

using namtree::bench::DesignKind;
using namtree::bench::ExperimentConfig;
using namtree::bench::MakeExperiment;
using namtree::bench::Num;
using namtree::bench::PrintRow;

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  const uint64_t keys = static_cast<uint64_t>(args.GetInt("keys", 500000));

  namtree::bench::PrintPreamble(
      "Network efficiency (per-op)",
      "round trips and memory-server bytes per operation, 40 clients",
      Num(static_cast<double>(keys)) + " keys, uniform data");

  struct Cell {
    const char* label;
    namtree::ycsb::WorkloadMix mix;
  };
  const Cell cells[] = {
      {"point", namtree::ycsb::WorkloadA()},
      {"range_0.001", namtree::ycsb::WorkloadB(0.001)},
      {"insert_mix", namtree::ycsb::WorkloadD()},
  };

  for (const Cell& cell : cells) {
    std::printf("\n# subplot: %s\n", cell.label);
    PrintRow({"design", "round_trips_per_op", "server_bytes_per_op"});
    for (DesignKind design :
         {DesignKind::kCoarse, DesignKind::kFine, DesignKind::kHybrid,
          DesignKind::kCoarseOneSided}) {
      ExperimentConfig config;
      config.design = design;
      config.num_keys = keys;
      auto exp = MakeExperiment(config);
      namtree::ycsb::RunConfig run;
      run.num_clients = 40;
      run.mix = cell.mix;
      run.duration =
          namtree::bench::DurationFor(cell.mix, keys, run.num_clients);
      run.warmup = run.duration / 10;
      const auto result = exp.Run(run);
      const double ops = std::max<double>(1, result.ops());
      PrintRow({namtree::bench::DesignLabel(design),
                Num(static_cast<double>(result.round_trips()) / ops),
                Num(static_cast<double>(result.server_bytes) / ops)});
    }
  }
  return 0;
}
