// Reproduces Figure 9: aggregated memory-server network utilisation (GB/s)
// for workloads A and B under skewed data placement. The paper's dashed
// "Max. Bandwidth" line is 4 ports x 6.8 GB/s = 27.2 GB/s.

#include "bench_common.h"

int main(int argc, char** argv) {
  namtree::ArgParser args(argc, argv);
  std::printf("# max_bandwidth_gbps\t27.2\n");
  namtree::bench::RunLoadSweep(
      args, "Figure 9",
      "Network Utilization for Workloads A and B (skewed data)",
      /*skewed_data=*/true, namtree::bench::SweepMetric::kBandwidth);
  return 0;
}
