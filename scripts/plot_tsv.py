#!/usr/bin/env python3
"""ASCII-plots the TSV series emitted by the namtree figure benches.

Usage:
    ./build/bench/fig08_throughput_uniform | scripts/plot_tsv.py
    scripts/plot_tsv.py bench_output.txt           # plots every figure found
    scripts/plot_tsv.py --log bench_output.txt     # log-scale y axis

Each `# subplot:` block (or each header+rows table) becomes one chart with
the first column as x and every other column as a named series.
"""

import math
import sys

WIDTH = 64
HEIGHT = 16
MARKS = "*o+x#@%&"


def is_number(token):
    try:
        float(token)
        return True
    except ValueError:
        return False


def render(title, header, rows, log_scale):
    xs = [float(r[0]) for r in rows]
    series = []
    for col in range(1, len(header)):
        points = []
        for r in rows:
            if col < len(r) and is_number(r[col]):
                points.append(float(r[col]))
            else:
                points.append(None)
        series.append((header[col], points))

    values = [v for _, pts in series for v in pts if v is not None]
    if not values or not xs:
        return
    lo, hi = min(values), max(values)
    if log_scale:
        floor = min(v for v in values if v > 0) if any(v > 0 for v in values) else 1
        lo = math.log10(max(floor, 1e-12))
        hi = math.log10(max(hi, 1e-12))
    if hi <= lo:
        hi = lo + 1

    def ycell(v):
        if v is None or (log_scale and v <= 0):
            return None
        val = math.log10(v) if log_scale else v
        return int((val - lo) / (hi - lo) * (HEIGHT - 1))

    def xcell(i):
        if len(xs) == 1:
            return 0
        return int(i / (len(xs) - 1) * (WIDTH - 1))

    grid = [[" "] * WIDTH for _ in range(HEIGHT)]
    for si, (_, pts) in enumerate(series):
        for i, v in enumerate(pts):
            yc = ycell(v)
            if yc is None:
                continue
            grid[HEIGHT - 1 - yc][xcell(i)] = MARKS[si % len(MARKS)]

    print(f"\n== {title} ==")
    top = f"{10 ** hi:.3g}" if log_scale else f"{hi:.3g}"
    bot = f"{10 ** lo:.3g}" if log_scale else f"{lo:.3g}"
    for i, line in enumerate(grid):
        label = top if i == 0 else (bot if i == HEIGHT - 1 else "")
        print(f"{label:>10} |{''.join(line)}")
    print(f"{'':>10} +{'-' * WIDTH}")
    print(f"{'':>12}x: {header[0]}  [{xs[0]:g} .. {xs[-1]:g}]"
          f"{'  (log y)' if log_scale else ''}")
    for si, (name, _) in enumerate(series):
        print(f"{'':>12}{MARKS[si % len(MARKS)]} {name}")


def main():
    args = [a for a in sys.argv[1:] if a != "--log"]
    log_scale = "--log" in sys.argv[1:]
    stream = open(args[0]) if args else sys.stdin

    title = "figure"
    subplot = ""
    header = None
    rows = []

    def flush():
        nonlocal header, rows
        if header and rows:
            render(f"{title} {subplot}".strip(), header, rows, log_scale)
        header, rows = None, []

    for raw in stream:
        line = raw.rstrip("\n")
        if line.startswith("====") or not line.strip():
            continue
        if line.startswith("# subplot:"):
            flush()
            subplot = line.split(":", 1)[1].strip()
            continue
        if line.startswith("#"):
            text = line[1:].strip()
            if "—" in text or " - " in text or text.lower().startswith(
                    ("figure", "table", "ablation", "baseline", "design")):
                flush()
                title = text.split("—")[0].strip()
                subplot = ""
            continue
        cells = line.split("\t")
        if len(cells) < 2:
            continue
        if not is_number(cells[0]):
            flush()
            header = cells
            continue
        if header is None:
            header = [f"col{i}" for i in range(len(cells))]
        rows.append(cells)
    flush()


if __name__ == "__main__":
    main()
