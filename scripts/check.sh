#!/usr/bin/env bash
# Full static-analysis + sanitizer gate for the namtree repo.
#
# Runs, in order:
#   1. repo lint          scripts/lint_namtree.py (zero findings enforced)
#   2. format check       clang-format --dry-run (skipped when absent)
#   3. clang-tidy         over src/ (skipped when absent)
#   4. plain build        -Werror, full ctest
#   5. asan+ubsan build   -Werror, full ctest
#   6. tsan build         -Werror, full ctest
#
# Usage: scripts/check.sh [--quick] [--explore N]
#   --quick      skip the tsan pass (the slowest stage)
#   --explore N  after the plain build, replay the differential and
#                fault-injection suites under N schedule seeds
#                (NAMTREE_SCHEDULE_SEED=1..N; see docs/simulator.md
#                §Schedule exploration). Reports the first failing seed.
#
# Build trees live under build-check/ so the gate never disturbs an
# existing build/ directory.

set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO"

QUICK=0
EXPLORE=0
EXPECT_EXPLORE_N=0
for arg in "$@"; do
  if [[ "$EXPECT_EXPLORE_N" == 1 ]]; then
    EXPLORE="$arg"
    EXPECT_EXPLORE_N=0
    continue
  fi
  case "$arg" in
    --quick) QUICK=1 ;;
    --explore) EXPECT_EXPLORE_N=1 ;;
    --explore=*) EXPLORE="${arg#--explore=}" ;;
    *) echo "usage: scripts/check.sh [--quick] [--explore N]" >&2; exit 2 ;;
  esac
done
if [[ "$EXPECT_EXPLORE_N" == 1 || ! "$EXPLORE" =~ ^[0-9]+$ ]]; then
  echo "usage: scripts/check.sh [--quick] [--explore N]" >&2; exit 2
fi

CTEST_PARALLEL="${CTEST_PARALLEL:-$(nproc)}"
FAILED=0

banner() { printf '\n=== %s ===\n' "$*"; }

run_suite() {
  local name="$1"; shift
  local dir="build-check/$name"
  banner "build: $name"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNAMTREE_WERROR=ON "$@"
  cmake --build "$dir" -j "$(nproc)"
  banner "ctest: $name"
  ctest --test-dir "$dir" --output-on-failure -j "$CTEST_PARALLEL"
}

banner "lint: scripts/lint_namtree.py"
python3 scripts/lint_namtree.py

banner "format: clang-format"
if command -v clang-format >/dev/null 2>&1; then
  mapfile -t SOURCES < <(git ls-files 'src/*.h' 'src/*.cc' 'tests/*.cc' \
                                      'bench/*.cc')
  clang-format --dry-run --Werror "${SOURCES[@]}"
  echo "clang-format: clean (${#SOURCES[@]} files)"
else
  echo "clang-format not installed; skipping (CI runs it)"
fi

banner "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1 && command -v clang++ >/dev/null 2>&1; then
  TIDY_DIR=build-check/tidy
  cmake -B "$TIDY_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t TIDY_SOURCES < <(git ls-files 'src/*.cc')
  clang-tidy -p "$TIDY_DIR" --quiet "${TIDY_SOURCES[@]}" || FAILED=1
else
  echo "clang-tidy (with clang++) not installed; skipping (CI runs it)"
fi

# The suites replayed per schedule seed: every differential (model-vs-sim)
# and fault-injection test — the workloads where an HB race or a
# schedule-dependent protocol bug would surface as a kRemoteRace finding.
EXPLORE_FILTER='Differential|Crash|Orphan|RpcTimeout|ResourceExhaustion'
EXPLORE_FILTER+='|Straggler|Backoff|Jitter|Transport|ScheduleExplorer'

explore_schedules() {
  local dir="build-check/plain"
  local seed
  for ((seed = 1; seed <= EXPLORE; seed++)); do
    banner "schedule seed $seed / $EXPLORE"
    if ! NAMTREE_SCHEDULE_SEED="$seed" \
         ctest --test-dir "$dir" --output-on-failure -j "$CTEST_PARALLEL" \
               -R "$EXPLORE_FILTER"; then
      echo "FAILING SCHEDULE SEED: $seed" >&2
      echo "reproduce with:" >&2
      echo "  NAMTREE_SCHEDULE_SEED=$seed ctest --test-dir $dir" \
           "--output-on-failure -R '$EXPLORE_FILTER'" >&2
      FAILED=1
      return
    fi
  done
  echo "schedule exploration clean: $EXPLORE seeds"
}

run_suite plain
if [[ "$EXPLORE" -gt 0 ]]; then
  banner "schedule exploration: $EXPLORE seeds over differential + fault suites"
  explore_schedules
fi
run_suite asan-ubsan -DNAMTREE_SANITIZE="address;undefined"
if [[ "$QUICK" == 0 ]]; then
  # The OLC local tree's optimistic reads are by-design races (see
  # tsan.supp); everything else must be race-free.
  export TSAN_OPTIONS="suppressions=$REPO/tsan.supp ${TSAN_OPTIONS:-}"
  run_suite tsan -DNAMTREE_SANITIZE="thread"
else
  banner "tsan skipped (--quick)"
fi

if [[ "$FAILED" != 0 ]]; then
  banner "FAILED"
  exit 1
fi
banner "ALL CHECKS PASSED"
