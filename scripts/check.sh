#!/usr/bin/env bash
# Full static-analysis + sanitizer gate for the namtree repo.
#
# Runs, in order:
#   1. repo lint          scripts/lint_namtree.py (zero findings enforced)
#   2. format check       clang-format --dry-run (skipped when absent)
#   3. clang-tidy         over src/ (skipped when absent)
#   4. plain build        -Werror, full ctest
#   5. asan+ubsan build   -Werror, full ctest
#   6. tsan build         -Werror, full ctest
#
# Usage: scripts/check.sh [--quick]
#   --quick   skip the tsan pass (the slowest stage)
#
# Build trees live under build-check/ so the gate never disturbs an
# existing build/ directory.

set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO"

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: scripts/check.sh [--quick]" >&2; exit 2 ;;
  esac
done

CTEST_PARALLEL="${CTEST_PARALLEL:-$(nproc)}"
FAILED=0

banner() { printf '\n=== %s ===\n' "$*"; }

run_suite() {
  local name="$1"; shift
  local dir="build-check/$name"
  banner "build: $name"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DNAMTREE_WERROR=ON "$@"
  cmake --build "$dir" -j "$(nproc)"
  banner "ctest: $name"
  ctest --test-dir "$dir" --output-on-failure -j "$CTEST_PARALLEL"
}

banner "lint: scripts/lint_namtree.py"
python3 scripts/lint_namtree.py

banner "format: clang-format"
if command -v clang-format >/dev/null 2>&1; then
  mapfile -t SOURCES < <(git ls-files 'src/*.h' 'src/*.cc' 'tests/*.cc' \
                                      'bench/*.cc')
  clang-format --dry-run --Werror "${SOURCES[@]}"
  echo "clang-format: clean (${#SOURCES[@]} files)"
else
  echo "clang-format not installed; skipping (CI runs it)"
fi

banner "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1 && command -v clang++ >/dev/null 2>&1; then
  TIDY_DIR=build-check/tidy
  cmake -B "$TIDY_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t TIDY_SOURCES < <(git ls-files 'src/*.cc')
  clang-tidy -p "$TIDY_DIR" --quiet "${TIDY_SOURCES[@]}" || FAILED=1
else
  echo "clang-tidy (with clang++) not installed; skipping (CI runs it)"
fi

run_suite plain
run_suite asan-ubsan -DNAMTREE_SANITIZE="address;undefined"
if [[ "$QUICK" == 0 ]]; then
  # The OLC local tree's optimistic reads are by-design races (see
  # tsan.supp); everything else must be race-free.
  export TSAN_OPTIONS="suppressions=$REPO/tsan.supp ${TSAN_OPTIONS:-}"
  run_suite tsan -DNAMTREE_SANITIZE="thread"
else
  banner "tsan skipped (--quick)"
fi

if [[ "$FAILED" != 0 ]]; then
  banner "FAILED"
  exit 1
fi
banner "ALL CHECKS PASSED"
