#!/usr/bin/env bash
# Runs the figure benches at (or near) the paper's data scale instead of the
# quick defaults. Expect tens of minutes and several GB of RAM.
#
#   scripts/run_paper_scale.sh [build-dir] | tee bench_output_paper_scale.txt

set -euo pipefail
BUILD="${1:-build}"

# 100M keys matches the paper's default data size (§6). Drop to 10M if the
# machine has < 32 GB of RAM.
KEYS="${NAMTREE_PAPER_KEYS:-10000000}"

echo "# paper-scale run: ${KEYS} keys per experiment"

for b in \
    table1_symbols table2_scalability fig03_theoretical \
    fig07_throughput_skew fig08_throughput_uniform fig09_network_util \
    fig11_memory_servers fig12_inserts \
    fig13_latency_skew fig14_latency_uniform fig15_colocation; do
  echo "===== ${b} ====="
  "${BUILD}/bench/${b}" --keys="${KEYS}"
  echo
done

echo "===== fig10_data_size ====="
"${BUILD}/bench/fig10_data_size" --sizes=1000000,10000000,100000000
