#!/usr/bin/env python3
"""Project-specific static lint for the namtree codebase.

Generic tooling (-Wall, clang-tidy) cannot see the hazards that are specific
to this repo's simulated-RDMA coroutine architecture, so this script scans
`src/` for three of them:

1. spawn-unsafe-params (error)
   A `sim::Task` coroutine that is *detached* with `sim::Spawn(...)` keeps
   running after the spawning statement finishes. Reference or pointer
   parameters are captured into the coroutine frame, so they must outlive
   the whole simulation, not just the call — a classic silent
   use-after-free that ASan only catches if the exact interleaving occurs.
   Suppress a finding whose lifetime has been audited with a comment on (or
   directly above) the definition:
       // namtree-lint: safe-coro-ref(<why the referents outlive the task>)

2. blocking-primitive (error)
   `std::mutex` / `std::condition_variable` / `std::thread` / `sleep_for`
   block a *real* OS thread. Inside the discrete-event simulator one
   blocked thread deadlocks the entire virtual world, so everything under
   src/ must use the sim primitives (sim::Semaphore, sim::Gate, ...) —
   except src/btree, which deliberately hosts the real-thread
   shared-nothing baseline (paper §7).
   Suppress with: // namtree-lint: real-threads-ok(<why>)

3. task-not-coroutine (error)
   A function returning `sim::Task` whose body contains no co_await /
   co_return / co_yield is not a coroutine at all: it compiles (moving a
   Task through), but it runs eagerly at call time instead of lazily at
   await time, which silently breaks virtual-time ordering.

4. unbounded-verb-retry (error)
   An infinite loop (`for (;;)` / `while (true)`) that co_awaits fabric
   verbs or RemoteOps primitives with no visible pacing or failure guard
   spins forever when the remote side never changes — e.g. on a lock word
   orphaned by a crashed holder — and hammers the simulated NIC at a fixed
   rate while doing so. Retry loops around verbs must back off (sim::Delay
   / the RemoteOps backoff), honour a deadline/lease, or check liveness
   and failure statuses (`alive()`, `IsAborted`, `IsUnavailable`).
   Suppress an audited loop with a comment on (or directly above) it:
       // namtree-lint: bounded-loop(<why the loop terminates>)

5. unchained-writes (error)
   Two consecutive co_awaited signaled write-class verbs (Write /
   CompareAndSwap / FetchAndAdd) aimed at the same destination page ring
   two doorbells and pay two NIC completions where one doorbell-batched
   chain (Fabric::PostChain; see RemoteOps::WriteUnlockPage and
   docs/batching.md) would do. Suppress an audited sequence with a comment
   on (or directly above) either verb:
       // namtree-lint: unchained-ok(<why chaining does not apply>)

6. hand-rolled-chase (error)
   An `if`/`while` condition that consults both the fence key
   (`high_key()`) and the right sibling (`right_sibling()`) is a
   hand-rolled B-link chase decision. The inclusive/exclusive fence
   contract is subtle (inner nodes cover their high key, leaves do not,
   head/drained nodes chase through) and was historically re-derived —
   inconsistently — at every descent site. The predicate now lives in
   one place: `PageView::NeedsChase(key)` (src/btree/page.h), and whole
   descend/chase loops belong in the shared traversal engine
   (src/index/traversal.cc). Exempt: traversal.cc itself and the
   bulk-load path (tree_build.cc). Suppress an audited site with a
   comment on (or directly above) the condition:
       // namtree-lint: chase-ok(<why NeedsChase does not apply>)

7. discarded-status (error)
   An expression statement that calls a function returning `Status` (or
   `sim::Task<Status>`, via co_await) and ignores the result silently
   swallows protocol failures — kUnavailable after a crash, kTimedOut
   after retry exhaustion, Corruption from an audit sweep. The compiler
   enforces most of this through `[[nodiscard]]` on Status itself; this
   rule additionally catches the `(void)`-less discard in code paths built
   with warnings relaxed, and keeps the policy visible in review. Cast to
   void and annotate an audited drop with a comment on (or directly above)
   the statement:
       // namtree-lint: status-ok(<why the failure cannot matter here>)

8. raw-counter-field (error)
   A `uint64_t foo = 0;` field in a src/ header whose name reads like an
   event counter (hits, misses, retries, round_trips, ...) is a
   hand-threaded counter: invisible to the metrics registry, it must be
   plumbed field-by-field into every result struct and JSON emitter — the
   pattern the unified registry (src/common/metrics.h,
   docs/observability.md) replaced after five generations of drift.
   Declare a `metrics::Counter` handle and register it instead. Exempt:
   the registry and histogram primitives themselves. Suppress an audited
   field (e.g. a materialized aggregate that is a *copy* of registry data,
   or a cursor that is not an event count) with a comment on (or directly
   above) the declaration:
       // namtree-lint: metric-ok(<why this is not a registry counter>)

9. unresolved-ambiguous-retry (error)
   A loop that co_awaits a non-idempotent atomic verb (CompareAndSwap /
   FetchAndAdd) re-posts it on the next iteration. Under network faults a
   kLost completion is *ambiguous* — the swap/add may have landed and lost
   only its ACK — so a blind re-post can double-apply (a duplicated
   release FAA is exactly what the auditor's kUnresolvedAmbiguousRetry
   violation reports at runtime; see docs/fault_model.md §8). The loop
   body must resolve the ambiguity with a read-back (an awaited
   Read-class verb: ReadWord, ReadPageUnlocked, ...) before re-posting.
   Suppress an audited re-post with a comment on (or directly above) the
   loop or the atomic:
       // namtree-lint: retry-ok(<why the re-post cannot double-apply>)

With --verbose the script additionally *notes* every awaited Task coroutine
taking reference/pointer parameters. These are not errors here: the repo
convention is that a Task is co_await-ed immediately by its caller, whose
frame keeps the referents alive. The spawn rule above polices exactly the
case where that convention breaks down.

Exit status: 0 when no errors, 1 when findings exist, 2 on usage errors.
"""

import argparse
import os
import re
import sys

SUPPRESS_RE = re.compile(
    r"namtree-lint:\s*(safe-coro-ref|real-threads-ok|bounded-loop|"
    r"unchained-ok|chase-ok|status-ok|metric-ok|retry-ok)\(")

# Directories (relative to src/) allowed to use real-thread primitives.
REAL_THREAD_ALLOWED = {"btree"}

# Files allowed to spell out fence/sibling chase decisions inline: the
# shared traversal engine owns the descend/chase state machine, and the
# bulk loader wires sibling chains while building them.
CHASE_ALLOWED_FILES = {"traversal.cc", "tree_build.cc"}

# An if/while header; the condition is paren-matched from the match end.
CHASE_COND_RE = re.compile(r"\b(?:if|while)\s*\(")

# Files exempt from raw-counter-field: the metric primitives themselves.
RAW_COUNTER_ALLOWED_FILES = {"metrics.h", "histogram.h"}

# A zero-initialised uint64_t field declaration in a header.
RAW_COUNTER_FIELD_RE = re.compile(
    r"\buint64_t\s+(?P<name>[A-Za-z_]\w*)\s*=\s*0\s*;")

# Field names that read like event counters. Matched against whole
# underscore-separated words so e.g. `region_bytes` stays quiet while
# `dropped_verbs` and `count_` are caught.
COUNTERISH_WORDS = (
    "count|counts|counted|hits|misses|retries|restarts|trips|waits|rounds|"
    "steals|drops|dropped|timeouts|doorbells|ops|errors|failures|aborts|"
    "spans|events|reads|writes|verbs|probes|lookups|inserts|updates|"
    "deletes|scans|calls|completions")
COUNTERISH_NAME_RE = re.compile(
    r"(?:^|_)(?:" + COUNTERISH_WORDS + r")(?:_|$)")

BLOCKING_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|condition_variable(_any)?|"
    r"thread|jthread)\b|std::this_thread::sleep"
)

# A function definition returning sim::Task<...>. Captures the name and the
# parameter list; the body is brace-matched from the match end.
TASK_DEF_RE = re.compile(
    r"(?:static\s+)?(?:sim::)?Task<[^;{}()]*>\s+"
    r"(?P<name>[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*"
    r"\((?P<params>[^;{}]*?)\)\s*(?:const\s*)?(?:noexcept\s*)?\{",
    re.DOTALL,
)

SPAWN_RE = re.compile(
    r"\bSpawn\s*\(\s*[^,]+,\s*"
    r"(?:[A-Za-z_][\w.\->:]*\.)?"  # optional object prefix: rig.  obj->
    r"(?P<callee>[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\("
)

INFINITE_LOOP_RE = re.compile(
    r"\bfor\s*\(\s*;\s*;\s*\)|\bwhile\s*\(\s*(?:true|1)\s*\)"
)

# A co_await whose expression mentions a fabric verb or RemoteOps primitive.
VERB_AWAIT_RE = re.compile(
    r"\bco_await\b[^;]*?\b(?:Read(?:Page(?:Unlocked)?|Batch|ClientEpoch)?|"
    r"Write(?:UnlockPage)?|CompareAndSwap|FetchAndAdd|Call|"
    r"(?:Try)?LockPage|UnlockPage|AllocPage(?:RoundRobin)?)\s*\(",
    re.DOTALL,
)

# Pacing / failure-guard evidence that bounds a verb retry loop.
RETRY_GUARD_RE = re.compile(
    r"\bDelay\s*\(|backoff|deadline|lease|\balive\s*\(|"
    r"\bIsAborted\s*\(|\bIsUnavailable\s*\("
)

# A co_awaited signaled write-class fabric verb. The match ends at the
# opening paren of the call so the argument list can be paren-matched.
AWAITED_WRITE_RE = re.compile(
    r"\bco_await\b[^;{}]*?\b(?:Write|CompareAndSwap|FetchAndAdd)\s*\(")

# Any loop header (the unresolved-ambiguous-retry rule covers bounded
# retry loops too, not just infinite ones).
LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")

# A co_awaited non-idempotent atomic verb: re-posted blindly, it can
# double-apply when the first post lost only its completion.
ATOMIC_AWAIT_RE = re.compile(
    r"\bco_await\b[^;]*?\b(?:CompareAndSwap|FetchAndAdd)\s*\(", re.DOTALL)

# Ambiguity-resolution evidence: an awaited Read-class verb or wrapper
# (ReadWord, ReadPageUnlocked, ReadBatch, ...) inside the same loop body.
READ_BACK_RE = re.compile(r"\bco_await\b[^;]*?\bRead\w*\s*\(", re.DOTALL)

# A function returning Status or sim::Task<Status> (definition or member
# declaration); the names feed the discarded-status rule.
STATUS_FN_RE = re.compile(
    r"(?:static\s+|virtual\s+)?"
    r"(?:(?:sim::)?Task<\s*(?:common::)?Status\s*>|(?:common::)?Status)\s+"
    r"(?P<name>[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\(")

# The same name declared with a void-ish return anywhere in the tree makes
# the call-site join ambiguous (the rule matches by unqualified name, not
# by overload resolution); such names are skipped rather than risk flagging
# a genuinely value-less call.
VOID_FN_RE = re.compile(
    r"(?:static\s+|virtual\s+)?(?:void|(?:sim::)?Task<\s*(?:void\s*)?>)\s+"
    r"(?P<name>[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\(")

# A call at statement position: the previous token ends a statement or
# opens a block, optionally via co_await, with an optional object prefix.
STATUS_CALL_RE = re.compile(
    r"(?P<lead>[;{}])\s*(?P<await>co_await\s+)?"
    r"(?:[A-Za-z_][\w]*(?:\.|->|::))*"
    r"(?P<callee>[A-Za-z_]\w*)\s*\(")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_brace_block(text, open_index):
    """Returns the index one past the brace that closes text[open_index]."""
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def match_paren(text, open_index):
    """Returns the index one past the paren that closes text[open_index]."""
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def dest_base(arg):
    """Normalises a verb-destination expression to its base page pointer:
    whitespace-insensitive, and `ptr.Plus(offset)` folds onto `ptr` (the
    version-word sub-address of the same page)."""
    return re.sub(r"\s+", "", arg).split(".Plus(")[0]


def line_of(text, index):
    return text.count("\n", 0, index) + 1


def split_params(params):
    """Splits a parameter list on top-level commas (angle-bracket aware)."""
    parts = []
    depth = 0
    current = []
    for ch in params:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def param_is_indirect(param):
    """True when the parameter is passed by reference or pointer."""
    return "&" in param or "*" in param


def is_suppressed(raw_lines, line):
    """Checks `line` and the line above it for a namtree-lint annotation."""
    for candidate in (line, line - 1):
        if 1 <= candidate <= len(raw_lines):
            if SUPPRESS_RE.search(raw_lines[candidate - 1]):
                return True
    return False


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: error: [{self.rule}] {self.message}"


def collect_sources(root):
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                yield os.path.join(dirpath, name)


def lint_tree(src_root, verbose):
    findings = []
    notes = []
    task_defs = {}  # name -> list of (path, line, params, body)
    spawned = {}  # callee name -> list of (path, line)
    status_fns = set()  # unqualified names returning Status / Task<Status>
    void_fns = set()  # names with a void-ish overload: ambiguous, skipped
    scanned = []  # (rel, raw_lines, clean) for the second pass

    files = list(collect_sources(src_root))
    for path in files:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        clean = strip_comments_and_strings(raw)
        rel = os.path.relpath(path, os.path.dirname(src_root))
        subdir = os.path.relpath(path, src_root).split(os.sep)[0]
        scanned.append((rel, raw_lines, clean))

        # Status-returning function names (for rule discarded-status).
        for m in STATUS_FN_RE.finditer(clean):
            status_fns.add(m.group("name").split("::")[-1])
        for m in VOID_FN_RE.finditer(clean):
            void_fns.add(m.group("name").split("::")[-1])

        # Rule: blocking-primitive.
        if subdir not in REAL_THREAD_ALLOWED:
            for m in BLOCKING_RE.finditer(clean):
                line = line_of(clean, m.start())
                if is_suppressed(raw_lines, line):
                    continue
                findings.append(Finding(
                    "blocking-primitive", rel, line,
                    f"'{m.group(0)}' blocks a real OS thread inside the "
                    "virtual-time simulator; use the sim:: primitives "
                    "(or move the code to src/btree)"))

        # Task definitions (for rules spawn-unsafe-params /
        # task-not-coroutine and the advisory note).
        for m in TASK_DEF_RE.finditer(clean):
            name = m.group("name").split("::")[-1]
            body_end = match_brace_block(clean, m.end() - 1)
            body = clean[m.end():body_end]
            line = line_of(clean, m.start())
            params = split_params(m.group("params"))
            task_defs.setdefault(name, []).append((rel, line, params, body))

            if not re.search(r"\bco_(await|return|yield)\b", body):
                findings.append(Finding(
                    "task-not-coroutine", rel, line,
                    f"'{name}' returns sim::Task but its body never "
                    "co_awaits/co_returns; it runs eagerly at call time "
                    "instead of lazily at await time"))
            elif verbose:
                indirect = [p for p in params if param_is_indirect(p)]
                if indirect:
                    notes.append(
                        f"{rel}:{line}: note: [coro-indirect-param] "
                        f"'{name}' takes {len(indirect)} reference/pointer "
                        "parameter(s); fine only while every caller "
                        "co_awaits it immediately")

        # Rule: unbounded-verb-retry.
        for m in INFINITE_LOOP_RE.finditer(clean):
            line = line_of(clean, m.start())
            open_brace = clean.find("{", m.end())
            # Skip braceless loop bodies and anything that isn't a loop
            # header (e.g. `{` far away because the body is one statement).
            if open_brace == -1 or clean[m.end():open_brace].strip():
                continue
            body = clean[open_brace:match_brace_block(clean, open_brace)]
            if not VERB_AWAIT_RE.search(body):
                continue
            if RETRY_GUARD_RE.search(body):
                continue
            if is_suppressed(raw_lines, line):
                continue
            findings.append(Finding(
                "unbounded-verb-retry", rel, line,
                "infinite loop co_awaits fabric verbs with no backoff, "
                "deadline/lease, or liveness/failure guard; it spins "
                "forever on an orphaned lock word. Add backoff or a "
                "bound, or annotate with "
                "'// namtree-lint: bounded-loop(...)'"))

        # Rule: unresolved-ambiguous-retry — a loop that re-posts a
        # non-idempotent atomic verb without a read-back cannot tell a
        # dropped verb (safe to re-post) from a dropped completion (the
        # effect landed; re-posting double-applies).
        for m in LOOP_RE.finditer(clean):
            header_open = clean.find("(", m.start())
            header_close = match_paren(clean, header_open)
            open_brace = clean.find("{", header_close)
            if open_brace == -1 or clean[header_close:open_brace].strip():
                continue  # braceless body, or not a loop header after all
            body = clean[open_brace:match_brace_block(clean, open_brace)]
            atomic = ATOMIC_AWAIT_RE.search(body)
            if not atomic:
                continue
            if READ_BACK_RE.search(body):
                continue  # the loop resolves ambiguity before re-posting
            loop_line = line_of(clean, m.start())
            atomic_line = line_of(clean, open_brace + atomic.start())
            if (is_suppressed(raw_lines, loop_line)
                    or is_suppressed(raw_lines, atomic_line)):
                continue
            findings.append(Finding(
                "unresolved-ambiguous-retry", rel, atomic_line,
                "loop re-posts a non-idempotent atomic verb "
                "(CompareAndSwap/FetchAndAdd) with no read-back in the "
                "body: a lost completion is ambiguous, and a blind re-post "
                "double-applies a landed effect (the auditor's "
                "kUnresolvedAmbiguousRetry at runtime). Resolve via a "
                "Read-class verb first (cf. RemoteOps lock/unlock paths), "
                "or annotate with '// namtree-lint: retry-ok(...)'"))

        # Rule: unchained-writes — two co_awaited signaled write-class
        # verbs to the same destination, with nothing but trivial
        # statements between them, belong in one PostChain.
        awaited = []
        for m in AWAITED_WRITE_RE.finditer(clean):
            open_paren = m.end() - 1
            close = match_paren(clean, open_paren)
            args = split_params(clean[open_paren + 1:close - 1])
            # Fabric verbs are (client, destination, ...): need both.
            if len(args) < 2:
                continue
            awaited.append(
                (m.start(), close, dest_base(args[1])))
        for (a_start, a_end, a_dest), (b_start, _, b_dest) in zip(
                awaited, awaited[1:]):
            between = clean[a_end:b_start]
            # Same statement run only: no new scope, at most the first
            # verb's terminator plus one trivial statement in between.
            if "{" in between or "}" in between or between.count(";") > 2:
                continue
            if not a_dest or a_dest != b_dest:
                continue
            line_a = line_of(clean, a_start)
            line_b = line_of(clean, b_start)
            if (is_suppressed(raw_lines, line_a)
                    or is_suppressed(raw_lines, line_b)):
                continue
            findings.append(Finding(
                "unchained-writes", rel, line_b,
                "consecutive signaled write-class verbs to the same "
                f"destination ('{a_dest}') ring two doorbells where one "
                "doorbell-batched chain would do; post them via "
                "Fabric::PostChain (cf. RemoteOps::WriteUnlockPage), or "
                "annotate with '// namtree-lint: unchained-ok(...)'"))

        # Rule: hand-rolled-chase — an if/while condition consulting both
        # the fence key and the right sibling re-derives the B-link chase
        # predicate inline instead of using PageView::NeedsChase (or the
        # traversal engine's descent loop).
        if os.path.basename(path) not in CHASE_ALLOWED_FILES:
            for m in CHASE_COND_RE.finditer(clean):
                open_paren = clean.find("(", m.start())
                cond = clean[open_paren:match_paren(clean, open_paren)]
                if "high_key" not in cond or "right_sibling" not in cond:
                    continue
                line = line_of(clean, m.start())
                if is_suppressed(raw_lines, line):
                    continue
                findings.append(Finding(
                    "hand-rolled-chase", rel, line,
                    "condition consults both high_key() and "
                    "right_sibling(): a hand-rolled B-link chase decision. "
                    "Use PageView::NeedsChase(key) (src/btree/page.h) — or "
                    "the traversal engine's descent — so the "
                    "inclusive/exclusive fence contract stays in one "
                    "place, or annotate with "
                    "'// namtree-lint: chase-ok(...)'"))

        # Rule: raw-counter-field — hand-threaded counter fields in
        # headers belong on the metrics registry (docs/observability.md).
        if (path.endswith((".h", ".hpp"))
                and os.path.basename(path) not in RAW_COUNTER_ALLOWED_FILES):
            for m in RAW_COUNTER_FIELD_RE.finditer(clean):
                name = m.group("name")
                if not COUNTERISH_NAME_RE.search(name):
                    continue
                line = line_of(clean, m.start())
                if is_suppressed(raw_lines, line):
                    continue
                findings.append(Finding(
                    "raw-counter-field", rel, line,
                    f"'uint64_t {name} = 0;' is a hand-threaded counter "
                    "field, invisible to the metrics registry and plumbed "
                    "by hand into every consumer. Declare a "
                    "metrics::Counter and register it "
                    "(src/common/metrics.h, docs/observability.md), or "
                    "annotate the audited field with "
                    "'// namtree-lint: metric-ok(...)'"))

        # Spawn call sites.
        for m in SPAWN_RE.finditer(clean):
            callee = m.group("callee").split("::")[-1]
            if callee == "Spawn":
                continue
            spawned.setdefault(callee, []).append(
                (rel, line_of(clean, m.start())))

    # Rule: discarded-status — an expression statement calling a function
    # known (by name, across the tree) to return Status / Task<Status>,
    # with the result unused. A `(void)` cast naturally falls outside the
    # statement-position pattern, so annotated drops stay quiet.
    for rel, raw_lines, clean in scanned:
        for m in STATUS_CALL_RE.finditer(clean):
            callee = m.group("callee")
            if callee not in status_fns or callee in void_fns:
                continue
            open_paren = clean.rfind("(", 0, m.end())
            close = match_paren(clean, open_paren)
            rest = clean[close:].lstrip()
            if not rest.startswith(";"):
                continue  # part of a larger expression: the value is used
            line = line_of(clean, open_paren)
            if is_suppressed(raw_lines, line):
                continue
            verb = ("co_await of a Task<Status> coroutine"
                    if m.group("await") else "call")
            findings.append(Finding(
                "discarded-status", rel, line,
                f"{verb} '{m.group('callee')}' returns Status but the "
                "result is discarded, silently swallowing failures "
                "(kUnavailable, kTimedOut, Corruption). Check it, or cast "
                "to void and annotate with "
                "'// namtree-lint: status-ok(...)'"))

    # Rule: spawn-unsafe-params — join spawn sites against definitions.
    for callee, sites in sorted(spawned.items()):
        for def_rel, def_line, params, _body in task_defs.get(callee, []):
            indirect = [p for p in params if param_is_indirect(p)]
            if not indirect:
                continue
            def_path = os.path.join(os.path.dirname(src_root), def_rel)
            with open(def_path, encoding="utf-8") as f:
                def_raw_lines = f.read().splitlines()
            if is_suppressed(def_raw_lines, def_line):
                continue
            site = ", ".join(f"{p}:{l}" for p, l in sites[:3])
            findings.append(Finding(
                "spawn-unsafe-params", def_rel, def_line,
                f"'{callee}' is detached with sim::Spawn ({site}) but takes "
                f"reference/pointer parameter(s) ({'; '.join(indirect)}); "
                "the frame outlives the call, so the referents can dangle. "
                "Pass by value, or annotate the audited lifetime with "
                "'// namtree-lint: safe-coro-ref(...)'"))

    return findings, notes


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=None,
                        help="source tree to scan (default: <repo>/src)")
    parser.add_argument("--verbose", action="store_true",
                        help="also print advisory notes")
    args = parser.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_root = os.path.abspath(args.root or os.path.join(repo, "src"))
    if not os.path.isdir(src_root):
        print(f"lint_namtree: no such directory: {src_root}", file=sys.stderr)
        return 2

    findings, notes = lint_tree(src_root, args.verbose)
    for note in notes:
        print(note)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_namtree: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_namtree: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
